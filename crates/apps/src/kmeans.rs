//! `kmeans`: K-means clustering (from STAMP).
//!
//! Unordered-within-phase benchmark: each iteration consists of an *assign*
//! phase (one task per point finds its nearest centroid; hint = the cache
//! line of the point's membership word), an *update* phase (one task per
//! point adds its coordinates to the chosen cluster's accumulator; hint =
//! the cluster id — the small set of centroids is the highly contended data
//! the paper highlights), and a *recenter* phase (one task per cluster turns
//! its accumulator into the new centroid). Fixed-point integer arithmetic
//! keeps the result exactly equal to the serial reference in any
//! serializable order.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

const FID_ASSIGN: TaskFnId = 0;
const FID_UPDATE: TaskFnId = 1;
const FID_RECENTER: TaskFnId = 2;
const FID_DRIVER: TaskFnId = 3;
const FID_SPAWN: TaskFnId = 4;

/// Timestamp slots per iteration (assign, update, recenter, driver).
const PHASES: u64 = 4;
/// Points spawned per spawner task.
const SPAWN_CHUNK: usize = 32;

/// K-means workload parameters and input points.
#[derive(Debug, Clone)]
pub struct KmeansWorkload {
    /// Input points, each `dims` integer coordinates.
    pub points: Vec<Vec<u64>>,
    /// Number of clusters.
    pub clusters: usize,
    /// Number of iterations (fixed, as the paper fixes 40 for consistency).
    pub iterations: usize,
    /// Coordinate dimensionality.
    pub dims: usize,
}

impl KmeansWorkload {
    /// Generate `n` points in `dims` dimensions around `clusters` seeds.
    pub fn generate(n: usize, dims: usize, clusters: usize, iterations: usize, seed: u64) -> Self {
        assert!(clusters >= 1 && n >= clusters, "need at least one point per cluster");
        let mut rng = SmallRng::seed_from_u64(seed);
        let seeds: Vec<Vec<u64>> =
            (0..clusters).map(|_| (0..dims).map(|_| rng.gen_range(0..1000u64)).collect()).collect();
        let points = (0..n)
            .map(|i| {
                let s = &seeds[i % clusters];
                (0..dims).map(|d| s[d] + rng.gen_range(0..60u64)).collect()
            })
            .collect();
        KmeansWorkload { points, clusters, iterations, dims }
    }

    /// Initial centroid coordinates (the first `clusters` points).
    pub fn initial_centroids(&self) -> Vec<Vec<u64>> {
        (0..self.clusters).map(|c| self.points[c].clone()).collect()
    }

    fn nearest(centroids: &[Vec<u64>], point: &[u64]) -> usize {
        let mut best = 0usize;
        let mut best_dist = u64::MAX;
        for (c, centroid) in centroids.iter().enumerate() {
            let dist: u64 = centroid
                .iter()
                .zip(point.iter())
                .map(|(&a, &b)| a.abs_diff(b) * a.abs_diff(b))
                .sum();
            if dist < best_dist {
                best_dist = dist;
                best = c;
            }
        }
        best
    }

    /// Serial reference: final membership of every point and final centroids.
    pub fn reference(&self) -> (Vec<u64>, Vec<Vec<u64>>) {
        let mut centroids = self.initial_centroids();
        let mut membership = vec![0u64; self.points.len()];
        for _ in 0..self.iterations {
            let mut sums = vec![vec![0u64; self.dims]; self.clusters];
            let mut counts = vec![0u64; self.clusters];
            for (i, p) in self.points.iter().enumerate() {
                let c = Self::nearest(&centroids, p);
                membership[i] = c as u64;
                counts[c] += 1;
                for d in 0..self.dims {
                    sums[c][d] += p[d];
                }
            }
            for c in 0..self.clusters {
                for d in 0..self.dims {
                    // Empty clusters keep their previous centroid.
                    if let Some(mean) = sums[c][d].checked_div(counts[c]) {
                        centroids[c][d] = mean;
                    }
                }
            }
        }
        (membership, centroids)
    }
}

/// The kmeans benchmark.
pub struct Kmeans {
    workload: KmeansWorkload,
    membership: Region,
    centroids: Region, // stride dims
    accum: Region,     // stride dims + 1 (sums then count)
    reference: (Vec<u64>, Vec<Vec<u64>>),
}

impl Kmeans {
    /// Build the benchmark around a generated workload.
    pub fn new(workload: KmeansWorkload) -> Self {
        let mut space = AddressSpace::new();
        let membership = space.alloc_array("membership", workload.points.len() as u64);
        let centroids =
            space.alloc_strided("centroids", workload.clusters as u64, workload.dims as u64);
        let accum =
            space.alloc_strided("accum", workload.clusters as u64, workload.dims as u64 + 1);
        let reference = workload.reference();
        Kmeans { workload, membership, centroids, accum, reference }
    }

    fn centroid_addr(&self, c: u64, d: u64) -> u64 {
        self.centroids.addr_of_field(c, d)
    }

    fn accum_addr(&self, c: u64, d: u64) -> u64 {
        self.accum.addr_of_field(c, d)
    }

    fn point_hint(&self, point: u64) -> Hint {
        Hint::cache_line(self.membership.addr_of(point))
    }

    fn cluster_hint(&self, cluster: u64) -> Hint {
        Hint::object(3, cluster)
    }

    fn iteration_base(iter: u64) -> Timestamp {
        iter * PHASES
    }
}

impl SwarmApp for Kmeans {
    fn name(&self) -> &str {
        "kmeans"
    }

    fn init_memory(&self, mem: &mut SimMemory) {
        for (c, centroid) in self.workload.initial_centroids().iter().enumerate() {
            for (d, &value) in centroid.iter().enumerate() {
                mem.store(self.centroid_addr(c as u64, d as u64), value);
            }
        }
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        // The driver of iteration 0 bootstraps everything else.
        vec![InitialTask::new(FID_DRIVER, 0, Hint::None, vec![0])]
    }

    fn run_task(&self, fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let dims = self.workload.dims as u64;
        match fid {
            FID_DRIVER => {
                // args = [iteration]. Spawn the spawners, the recenter tasks
                // and the next driver.
                let iter = args[0];
                let base = Self::iteration_base(iter);
                let n = self.workload.points.len();
                for chunk_start in (0..n).step_by(SPAWN_CHUNK) {
                    ctx.enqueue(FID_SPAWN, base + 1, Hint::None, vec![iter, chunk_start as u64]);
                }
                for c in 0..self.workload.clusters as u64 {
                    ctx.enqueue(FID_RECENTER, base + 3, self.cluster_hint(c), vec![c]);
                }
                if (iter + 1) < self.workload.iterations as u64 {
                    ctx.enqueue(
                        FID_DRIVER,
                        Self::iteration_base(iter + 1),
                        Hint::None,
                        vec![iter + 1],
                    );
                }
            }
            FID_SPAWN => {
                // args = [iteration, chunk_start]: enqueue assign tasks.
                let iter = args[0];
                let base = Self::iteration_base(iter);
                let start = args[1] as usize;
                let end = (start + SPAWN_CHUNK).min(self.workload.points.len());
                for p in start..end {
                    ctx.enqueue(
                        FID_ASSIGN,
                        base + 1,
                        self.point_hint(p as u64),
                        vec![iter, p as u64],
                    );
                }
            }
            FID_ASSIGN => {
                // args = [iteration, point]: read the centroids, pick the
                // nearest, record membership, and spawn the update task.
                let iter = args[0];
                let p = args[1];
                let point = &self.workload.points[p as usize];
                let mut best = 0u64;
                let mut best_dist = u64::MAX;
                for c in 0..self.workload.clusters as u64 {
                    let mut dist = 0u64;
                    for d in 0..dims {
                        let coord = ctx.read(self.centroid_addr(c, d));
                        let diff = coord.abs_diff(point[d as usize]);
                        dist += diff * diff;
                    }
                    if dist < best_dist {
                        best_dist = dist;
                        best = c;
                    }
                }
                ctx.compute(10 * dims * self.workload.clusters as u64);
                ctx.write(self.membership.addr_of(p), best);
                let base = Self::iteration_base(iter);
                ctx.enqueue(FID_UPDATE, base + 2, self.cluster_hint(best), vec![p, best]);
            }
            FID_UPDATE => {
                // args = [point, cluster]: add the point into the cluster
                // accumulator (the contended single-hint read-write data).
                let p = args[0];
                let c = args[1];
                let point = &self.workload.points[p as usize];
                for d in 0..dims {
                    let addr = self.accum_addr(c, d);
                    let sum = ctx.read(addr);
                    ctx.write(addr, sum + point[d as usize]);
                }
                let count_addr = self.accum_addr(c, dims);
                let count = ctx.read(count_addr);
                ctx.write(count_addr, count + 1);
            }
            FID_RECENTER => {
                // args = [cluster]: divide the accumulator into the centroid
                // and reset it for the next iteration.
                let c = args[0];
                let count = ctx.read(self.accum_addr(c, dims));
                // Keep the explicit guard: restructuring around checked_div
                // would change which simulated reads/writes are issued.
                #[allow(clippy::manual_checked_ops)]
                if count > 0 {
                    for d in 0..dims {
                        let sum = ctx.read(self.accum_addr(c, d));
                        ctx.write(self.centroid_addr(c, d), sum / count);
                        ctx.write(self.accum_addr(c, d), 0);
                    }
                    ctx.write(self.accum_addr(c, dims), 0);
                }
                let _ = ts;
            }
            other => panic!("unknown kmeans task function {other}"),
        }
    }

    fn num_task_fns(&self) -> usize {
        5
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        let (membership, centroids) = &self.reference;
        for (p, &want) in membership.iter().enumerate() {
            let got = mem.load(self.membership.addr_of(p as u64));
            if got != want {
                return Err(format!("membership of point {p}: got {got}, expected {want}"));
            }
        }
        for (c, centroid) in centroids.iter().enumerate() {
            for (d, &want) in centroid.iter().enumerate() {
                let got = mem.load(self.centroid_addr(c as u64, d as u64));
                if got != want {
                    return Err(format!("centroid {c}[{d}]: got {got}, expected {want}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn workload(seed: u64) -> KmeansWorkload {
        KmeansWorkload::generate(96, 4, 4, 3, seed)
    }

    fn run(app: Kmeans, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(app)
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("kmeans must match the serial clustering")
    }

    #[test]
    fn reference_assigns_points_to_nearby_seeds() {
        let w = workload(1);
        let (membership, centroids) = w.reference();
        assert_eq!(membership.len(), 96);
        assert_eq!(centroids.len(), 4);
        // Every cluster should own at least one point in this well-separated
        // synthetic input.
        for c in 0..4u64 {
            assert!(membership.contains(&c), "cluster {c} is empty");
        }
    }

    #[test]
    fn matches_serial_on_one_core() {
        run(Kmeans::new(workload(2)), Scheduler::Random, 1);
    }

    #[test]
    fn matches_serial_under_all_schedulers() {
        for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            run(Kmeans::new(workload(3)), s, 16);
        }
    }

    #[test]
    fn centroid_updates_are_contended_under_random() {
        let stats = run(Kmeans::new(workload(4)), Scheduler::Random, 16);
        assert!(stats.tasks_committed > 96 * 3, "expected assign+update tasks per iteration");
    }
}
