//! `bfs`: breadth-first tree of an arbitrary graph (from PBFS in the paper).
//!
//! Ordered benchmark: a task's timestamp is its BFS level. The coarse-grain
//! version visits a vertex and writes all of its unvisited neighbors'
//! distances (multi-hint read-write data); the fine-grain version writes only
//! its own vertex's distance and spawns one child per neighbor, making
//! almost all read-write data single-hint (Section V).

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

use crate::graph::{Graph, UNREACHED};

/// Coarse-grain BFS (the PBFS-style implementation of Table I).
pub struct Bfs {
    graph: Graph,
    source: u32,
    dist: Region,
    reference: Vec<u64>,
    fine_grain: bool,
}

impl Bfs {
    /// Build the coarse-grain version.
    pub fn coarse(graph: Graph, source: u32) -> Self {
        Self::build(graph, source, false)
    }

    /// Build the fine-grain version (Section V).
    pub fn fine(graph: Graph, source: u32) -> Self {
        Self::build(graph, source, true)
    }

    fn build(graph: Graph, source: u32, fine_grain: bool) -> Self {
        assert!((source as usize) < graph.num_vertices(), "source out of range");
        let mut space = AddressSpace::new();
        let dist = space.alloc_array("dist", graph.num_vertices() as u64);
        let reference = graph.bfs_levels(source);
        Bfs { graph, source, dist, reference, fine_grain }
    }

    fn dist_addr(&self, v: u32) -> u64 {
        self.dist.addr_of(v as u64)
    }

    fn hint_for(&self, v: u32) -> Hint {
        Hint::cache_line(self.dist_addr(v))
    }
}

impl SwarmApp for Bfs {
    fn name(&self) -> &str {
        if self.fine_grain {
            "bfs-fg"
        } else {
            "bfs"
        }
    }

    fn init_memory(&self, mem: &mut SimMemory) {
        for v in 0..self.graph.num_vertices() as u32 {
            mem.store(self.dist_addr(v), UNREACHED);
        }
        if !self.fine_grain {
            // The coarse-grain variant marks the source visited up front and
            // lets the first task expand it (Listing-2 style "confirm then
            // expand" structure).
            mem.store(self.dist_addr(self.source), 0);
        }
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        vec![InitialTask::new(0, 0, self.hint_for(self.source), vec![self.source as u64])]
    }

    fn run_task(&self, _fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let v = args[0] as u32;
        if self.fine_grain {
            // Fine-grain: claim my own vertex, then spawn children.
            if ctx.read(self.dist_addr(v)) == UNREACHED {
                ctx.write(self.dist_addr(v), ts);
                for (n, _) in self.graph.neighbors(v) {
                    ctx.enqueue(0, ts + 1, self.hint_for(n), vec![n as u64]);
                }
            }
        } else {
            // Coarse-grain: if I am a confirmed visit at this level, mark all
            // unvisited neighbors (writes to other vertices' data).
            if ctx.read(self.dist_addr(v)) == ts {
                for (n, _) in self.graph.neighbors(v) {
                    if ctx.read(self.dist_addr(n)) == UNREACHED {
                        ctx.write(self.dist_addr(n), ts + 1);
                        ctx.enqueue(0, ts + 1, self.hint_for(n), vec![n as u64]);
                    }
                }
            }
        }
    }

    fn num_task_fns(&self) -> usize {
        1
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for v in 0..self.graph.num_vertices() as u32 {
            let got = mem.load(self.dist_addr(v));
            let want = self.reference[v as usize];
            if got != want {
                return Err(format!("bfs level of vertex {v}: got {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(app: Bfs, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(app)
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("bfs must validate against the serial reference")
    }

    #[test]
    fn coarse_grain_matches_reference_on_one_core() {
        let g = Graph::road_grid(12, 12, 1);
        run(Bfs::coarse(g, 0), Scheduler::Random, 1);
    }

    #[test]
    fn coarse_grain_matches_reference_on_many_cores() {
        let g = Graph::road_grid(12, 12, 2);
        for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            let stats = run(Bfs::coarse(g.clone(), 0), s, 16);
            assert_eq!(stats.cores, 16);
            assert!(stats.tasks_committed > 0);
        }
    }

    #[test]
    fn fine_grain_matches_reference() {
        let g = Graph::road_grid(10, 10, 3);
        let stats = run(Bfs::fine(g, 0), Scheduler::Hints, 16);
        // The fine-grain version creates one task per edge relaxation, which
        // is substantially more tasks than vertices.
        assert!(stats.tasks_committed as usize >= 100);
    }

    #[test]
    fn fine_grain_creates_more_tasks_than_coarse() {
        let g = Graph::road_grid(10, 10, 4);
        let coarse = run(Bfs::coarse(g.clone(), 0), Scheduler::Hints, 16);
        let fine = run(Bfs::fine(g, 0), Scheduler::Hints, 16);
        assert!(fine.tasks_committed > coarse.tasks_committed);
    }

    #[test]
    fn works_on_social_graphs_too() {
        let g = Graph::social(150, 3, 60, 5);
        run(Bfs::coarse(g, 0), Scheduler::Hints, 4);
    }
}
