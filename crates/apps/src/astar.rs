//! `astar`: A* pathfinding between two points of a road map.
//!
//! Ordered benchmark: a task's timestamp is the usual A* priority
//! `f = g + h(v)` with an admissible, consistent heuristic, so tasks commit
//! in f-order exactly like a sequential A* pops its priority queue. Tasks
//! whose f is not smaller than the best known route to the target prune
//! themselves, so the search does not degenerate into full Dijkstra.

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

use crate::graph::{Graph, UNREACHED};

/// A* benchmark (coarse- or fine-grain).
pub struct Astar {
    graph: Graph,
    source: u32,
    target: u32,
    gscore: Region,
    reference_target_dist: u64,
    fine_grain: bool,
}

impl Astar {
    /// Build the coarse-grain version.
    pub fn coarse(graph: Graph, source: u32, target: u32) -> Self {
        Self::build(graph, source, target, false)
    }

    /// Build the fine-grain version (Section V).
    pub fn fine(graph: Graph, source: u32, target: u32) -> Self {
        Self::build(graph, source, target, true)
    }

    fn build(graph: Graph, source: u32, target: u32, fine_grain: bool) -> Self {
        assert!((source as usize) < graph.num_vertices(), "source out of range");
        assert!((target as usize) < graph.num_vertices(), "target out of range");
        let mut space = AddressSpace::new();
        let gscore = space.alloc_array("gscore", graph.num_vertices() as u64);
        let reference_target_dist = graph.dijkstra(source)[target as usize];
        Astar { graph, source, target, gscore, reference_target_dist, fine_grain }
    }

    fn g_addr(&self, v: u32) -> u64 {
        self.gscore.addr_of(v as u64)
    }

    fn hint_for(&self, v: u32) -> Hint {
        Hint::cache_line(self.g_addr(v))
    }

    fn pruned(&self, ctx: &mut TaskCtx<'_>, ts: Timestamp) -> bool {
        let best = ctx.read(self.g_addr(self.target));
        best != UNREACHED && ts >= best
    }
}

impl SwarmApp for Astar {
    fn name(&self) -> &str {
        if self.fine_grain {
            "astar-fg"
        } else {
            "astar"
        }
    }

    fn init_memory(&self, mem: &mut SimMemory) {
        for v in 0..self.graph.num_vertices() as u32 {
            mem.store(self.g_addr(v), UNREACHED);
        }
        if !self.fine_grain {
            mem.store(self.g_addr(self.source), 0);
        }
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        let f0 = self.graph.heuristic(self.source, self.target);
        vec![InitialTask::new(0, f0, self.hint_for(self.source), vec![self.source as u64, 0])]
    }

    fn run_task(&self, _fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let v = args[0] as u32;
        let g = args[1];
        if self.pruned(ctx, ts) {
            return;
        }
        if self.fine_grain {
            // Fine-grain: claim my own g-score, spawn one child per neighbor.
            if g < ctx.read(self.g_addr(v)) {
                ctx.write(self.g_addr(v), g);
                if v != self.target {
                    for (n, w) in self.graph.neighbors(v) {
                        let ng = g + w as u64;
                        let f = ng + self.graph.heuristic(n, self.target);
                        ctx.enqueue(0, f.max(ts), self.hint_for(n), vec![n as u64, ng]);
                    }
                }
            }
        } else {
            // Coarse-grain: if this is still the best known path to v, relax
            // all neighbors.
            if ctx.read(self.g_addr(v)) == g && v != self.target {
                for (n, w) in self.graph.neighbors(v) {
                    let ng = g + w as u64;
                    if ng < ctx.read(self.g_addr(n)) {
                        ctx.write(self.g_addr(n), ng);
                        let f = ng + self.graph.heuristic(n, self.target);
                        ctx.enqueue(0, f.max(ts), self.hint_for(n), vec![n as u64, ng]);
                    }
                }
            }
        }
    }

    fn num_task_fns(&self) -> usize {
        1
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        let got = mem.load(self.g_addr(self.target));
        if got != self.reference_target_dist {
            return Err(format!(
                "astar route length: got {got}, expected {}",
                self.reference_target_dist
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(app: Astar, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(app)
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("astar must find the shortest route")
    }

    fn corner_to_corner(side: usize, seed: u64) -> (Graph, u32, u32) {
        let g = Graph::road_grid(side, side, seed);
        let target = (side * side - 1) as u32;
        (g, 0, target)
    }

    #[test]
    fn coarse_grain_finds_shortest_route_single_core() {
        let (g, s, t) = corner_to_corner(12, 31);
        run(Astar::coarse(g, s, t), Scheduler::Random, 1);
    }

    #[test]
    fn coarse_grain_finds_shortest_route_all_schedulers() {
        let (g, s, t) = corner_to_corner(12, 32);
        for sch in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            run(Astar::coarse(g.clone(), s, t), sch, 16);
        }
    }

    #[test]
    fn fine_grain_finds_shortest_route() {
        let (g, s, t) = corner_to_corner(10, 33);
        run(Astar::fine(g, s, t), Scheduler::Hints, 16);
    }

    #[test]
    fn pruning_limits_work_compared_to_sssp_like_expansion() {
        // A* to a nearby target should commit far fewer tasks than the number
        // of edges in the graph (i.e., pruning is actually effective).
        let g = Graph::road_grid(14, 14, 34);
        let edges = g.num_edges() as u64;
        let stats = run(Astar::coarse(g, 0, 15), Scheduler::Hints, 16);
        assert!(
            stats.tasks_committed < edges,
            "A* committed {} tasks, which suggests no pruning (edges = {edges})",
            stats.tasks_committed
        );
    }
}
