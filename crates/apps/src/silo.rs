//! `silo`: an in-memory OLTP database running a TPC-C-like workload.
//!
//! Ordered benchmark: every transaction gets a timestamp (its serial order)
//! and is decomposed into tasks that each read or update one tuple of one
//! table. A tuple's address is not known when the task is created (the real
//! system must traverse an index first), but its *identity* — `(table,
//! primary key)` — is, so that pair is the spatial hint (the "abstract unique
//! id" pattern of Table I).
//!
//! The workload is a scaled-down TPC-C: `new-order` transactions (70%)
//! update a district's next-order-id and the stock of a handful of items and
//! write order-line records; `payment` transactions (30%) update warehouse,
//! district and customer balances.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

/// Table identifiers used in hints.
const T_WAREHOUSE: u32 = 0;
const T_DISTRICT: u32 = 1;
const T_CUSTOMER: u32 = 2;
const T_STOCK: u32 = 3;
const T_ORDERS: u32 = 4;

const FID_NEW_ORDER_ROOT: TaskFnId = 0;
const FID_STOCK_UPDATE: TaskFnId = 1;
const FID_ORDER_INSERT: TaskFnId = 2;
const FID_PAYMENT_ROOT: TaskFnId = 3;
const FID_WAREHOUSE_PAY: TaskFnId = 4;
const FID_CUSTOMER_PAY: TaskFnId = 5;

/// One generated transaction.
#[derive(Debug, Clone)]
enum Txn {
    NewOrder {
        warehouse: u64,
        district: u64,
        /// (item, quantity) pairs; items are distinct within a transaction.
        items: Vec<(u64, u64)>,
    },
    Payment {
        warehouse: u64,
        district: u64,
        customer: u64,
        amount: u64,
    },
}

/// Workload parameters for the silo benchmark.
#[derive(Debug, Clone)]
pub struct SiloWorkload {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Districts per warehouse.
    pub districts_per_warehouse: u64,
    /// Customers per district.
    pub customers_per_district: u64,
    /// Number of distinct items.
    pub items: u64,
    /// Number of transactions.
    pub transactions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SiloWorkload {
    fn default() -> Self {
        SiloWorkload {
            warehouses: 4,
            districts_per_warehouse: 4,
            customers_per_district: 16,
            items: 128,
            transactions: 400,
            seed: 1,
        }
    }
}

/// The silo benchmark.
pub struct Silo {
    workload: SiloWorkload,
    txns: Vec<Txn>,
    warehouse_ytd: Region,
    district: Region, // stride 2: [ytd, next_oid]
    customer_balance: Region,
    stock: Region, // stride 2: [quantity, ytd]
    orders: Region,
    reference: SiloReference,
}

/// Final state computed by the serial reference execution.
#[derive(Debug, Clone, Default)]
struct SiloReference {
    warehouse_ytd: Vec<u64>,
    district_ytd: Vec<u64>,
    district_next_oid: Vec<u64>,
    customer_balance: Vec<u64>,
    stock_quantity: Vec<u64>,
    total_order_lines: u64,
}

impl Silo {
    /// Build the benchmark, generating `workload.transactions` transactions.
    pub fn new(workload: SiloWorkload) -> Self {
        let mut rng = SmallRng::seed_from_u64(workload.seed);
        let mut txns = Vec::with_capacity(workload.transactions);
        for _ in 0..workload.transactions {
            let warehouse = rng.gen_range(0..workload.warehouses);
            let district = rng.gen_range(0..workload.districts_per_warehouse);
            if rng.gen_bool(0.7) {
                let num_items = rng.gen_range(3..=8usize);
                let mut items = Vec::with_capacity(num_items);
                while items.len() < num_items {
                    let item = rng.gen_range(0..workload.items);
                    if !items.iter().any(|&(i, _)| i == item) {
                        items.push((item, rng.gen_range(1..=5u64)));
                    }
                }
                txns.push(Txn::NewOrder { warehouse, district, items });
            } else {
                txns.push(Txn::Payment {
                    warehouse,
                    district,
                    customer: rng.gen_range(0..workload.customers_per_district),
                    amount: rng.gen_range(1..100u64),
                });
            }
        }

        let num_districts = workload.warehouses * workload.districts_per_warehouse;
        let num_customers = num_districts * workload.customers_per_district;
        let num_stock = workload.warehouses * workload.items;
        let mut space = AddressSpace::new();
        let warehouse_ytd = space.alloc_strided("warehouse", workload.warehouses, 8);
        let district = space.alloc_strided("district", num_districts, 8);
        let customer_balance = space.alloc_array("customer", num_customers);
        let stock = space.alloc_strided("stock", num_stock, 2);
        // Generous order-line area: transactions × max items.
        let orders = space.alloc_array("orders", (workload.transactions * 8) as u64);

        let reference = Self::run_serial(&workload, &txns);
        Silo { workload, txns, warehouse_ytd, district, customer_balance, stock, orders, reference }
    }

    fn district_index(&self, warehouse: u64, district: u64) -> u64 {
        warehouse * self.workload.districts_per_warehouse + district
    }

    fn customer_index(&self, warehouse: u64, district: u64, customer: u64) -> u64 {
        self.district_index(warehouse, district) * self.workload.customers_per_district + customer
    }

    fn stock_index(&self, warehouse: u64, item: u64) -> u64 {
        warehouse * self.workload.items + item
    }

    fn initial_stock(index: u64) -> u64 {
        50 + (index % 41)
    }

    fn run_serial(workload: &SiloWorkload, txns: &[Txn]) -> SiloReference {
        let num_districts = workload.warehouses * workload.districts_per_warehouse;
        let num_customers = num_districts * workload.customers_per_district;
        let num_stock = workload.warehouses * workload.items;
        let mut r = SiloReference {
            warehouse_ytd: vec![0; workload.warehouses as usize],
            district_ytd: vec![0; num_districts as usize],
            district_next_oid: vec![0; num_districts as usize],
            customer_balance: vec![1_000_000; num_customers as usize],
            stock_quantity: (0..num_stock).map(Self::initial_stock).collect(),
            total_order_lines: 0,
        };
        for txn in txns {
            match txn {
                Txn::NewOrder { warehouse, district, items } => {
                    let d = (warehouse * workload.districts_per_warehouse + district) as usize;
                    r.district_next_oid[d] += 1;
                    for &(item, qty) in items {
                        let s = (warehouse * workload.items + item) as usize;
                        if r.stock_quantity[s] >= qty {
                            r.stock_quantity[s] -= qty;
                        } else {
                            r.stock_quantity[s] = r.stock_quantity[s] + 91 - qty;
                        }
                        r.total_order_lines += 1;
                    }
                }
                Txn::Payment { warehouse, district, customer, amount } => {
                    let d = (warehouse * workload.districts_per_warehouse + district) as usize;
                    let c = (d as u64 * workload.customers_per_district + customer) as usize;
                    r.warehouse_ytd[*warehouse as usize] += amount;
                    r.district_ytd[d] += amount;
                    r.customer_balance[c] -= amount;
                }
            }
        }
        r
    }
}

impl SwarmApp for Silo {
    fn name(&self) -> &str {
        "silo"
    }

    fn init_memory(&self, mem: &mut SimMemory) {
        let num_customers = self.workload.warehouses
            * self.workload.districts_per_warehouse
            * self.workload.customers_per_district;
        for c in 0..num_customers {
            mem.store(self.customer_balance.addr_of(c), 1_000_000);
        }
        let num_stock = self.workload.warehouses * self.workload.items;
        for s in 0..num_stock {
            mem.store(self.stock.addr_of_field(s, 0), Self::initial_stock(s));
        }
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        self.txns
            .iter()
            .enumerate()
            .map(|(i, txn)| {
                let ts = i as Timestamp;
                match txn {
                    Txn::NewOrder { warehouse, district, .. } => InitialTask::new(
                        FID_NEW_ORDER_ROOT,
                        ts,
                        Hint::object(T_DISTRICT, self.district_index(*warehouse, *district)),
                        vec![i as u64],
                    ),
                    Txn::Payment { warehouse, district, .. } => InitialTask::new(
                        FID_PAYMENT_ROOT,
                        ts,
                        Hint::object(T_DISTRICT, self.district_index(*warehouse, *district)),
                        vec![i as u64],
                    ),
                }
            })
            .collect()
    }

    fn run_task(&self, fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        match fid {
            FID_NEW_ORDER_ROOT => {
                let txn = &self.txns[args[0] as usize];
                let Txn::NewOrder { warehouse, district, items } = txn else {
                    panic!("task function does not match transaction type");
                };
                let d = self.district_index(*warehouse, *district);
                // Allocate the order id from the district tuple.
                let next_oid_addr = self.district.addr_of_field(d, 1);
                let oid = ctx.read(next_oid_addr);
                ctx.write(next_oid_addr, oid + 1);
                ctx.compute(30); // index traversal to find the district tuple
                for (slot, &(item, qty)) in items.iter().enumerate() {
                    let stock_key = self.stock_index(*warehouse, item);
                    ctx.enqueue(
                        FID_STOCK_UPDATE,
                        ts,
                        Hint::object(T_STOCK, stock_key),
                        vec![stock_key, qty],
                    );
                    ctx.enqueue(
                        FID_ORDER_INSERT,
                        ts,
                        Hint::object(T_ORDERS, args[0] * 8 + slot as u64),
                        vec![args[0] * 8 + slot as u64, item, qty],
                    );
                }
            }
            FID_STOCK_UPDATE => {
                let stock_key = args[0];
                let qty = args[1];
                let addr = self.stock.addr_of_field(stock_key, 0);
                let current = ctx.read(addr);
                let updated = if current >= qty { current - qty } else { current + 91 - qty };
                ctx.write(addr, updated);
                let ytd_addr = self.stock.addr_of_field(stock_key, 1);
                let ytd = ctx.read(ytd_addr);
                ctx.write(ytd_addr, ytd + qty);
                ctx.compute(40); // B-tree traversal to locate the stock tuple
            }
            FID_ORDER_INSERT => {
                let slot = args[0];
                let item = args[1];
                let qty = args[2];
                ctx.write(self.orders.addr_of(slot), (item << 8) | qty);
                ctx.compute(25);
            }
            FID_PAYMENT_ROOT => {
                let txn = &self.txns[args[0] as usize];
                let Txn::Payment { warehouse, district, customer, amount } = txn else {
                    panic!("task function does not match transaction type");
                };
                let d = self.district_index(*warehouse, *district);
                let ytd_addr = self.district.addr_of_field(d, 0);
                let ytd = ctx.read(ytd_addr);
                ctx.write(ytd_addr, ytd + amount);
                ctx.compute(30);
                ctx.enqueue(
                    FID_WAREHOUSE_PAY,
                    ts,
                    Hint::object(T_WAREHOUSE, *warehouse),
                    vec![*warehouse, *amount],
                );
                let c = self.customer_index(*warehouse, *district, *customer);
                ctx.enqueue(FID_CUSTOMER_PAY, ts, Hint::object(T_CUSTOMER, c), vec![c, *amount]);
            }
            FID_WAREHOUSE_PAY => {
                let warehouse = args[0];
                let amount = args[1];
                let addr = self.warehouse_ytd.addr_of_field(warehouse, 0);
                let ytd = ctx.read(addr);
                ctx.write(addr, ytd + amount);
                ctx.compute(20);
            }
            FID_CUSTOMER_PAY => {
                let c = args[0];
                let amount = args[1];
                let addr = self.customer_balance.addr_of(c);
                let balance = ctx.read(addr);
                ctx.write(addr, balance - amount);
                ctx.compute(20);
            }
            other => panic!("unknown silo task function {other}"),
        }
    }

    fn num_task_fns(&self) -> usize {
        6
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for w in 0..self.workload.warehouses {
            if mem.load(self.warehouse_ytd.addr_of_field(w, 0))
                != self.reference.warehouse_ytd[w as usize]
            {
                return Err(format!("warehouse {w} ytd mismatch"));
            }
        }
        let num_districts = self.workload.warehouses * self.workload.districts_per_warehouse;
        for d in 0..num_districts {
            if mem.load(self.district.addr_of_field(d, 0))
                != self.reference.district_ytd[d as usize]
            {
                return Err(format!("district {d} ytd mismatch"));
            }
            if mem.load(self.district.addr_of_field(d, 1))
                != self.reference.district_next_oid[d as usize]
            {
                return Err(format!("district {d} next-oid mismatch"));
            }
        }
        let num_customers = num_districts * self.workload.customers_per_district;
        for c in 0..num_customers {
            if mem.load(self.customer_balance.addr_of(c))
                != self.reference.customer_balance[c as usize]
            {
                return Err(format!("customer {c} balance mismatch"));
            }
        }
        let num_stock = self.workload.warehouses * self.workload.items;
        for s in 0..num_stock {
            if mem.load(self.stock.addr_of_field(s, 0)) != self.reference.stock_quantity[s as usize]
            {
                return Err(format!("stock {s} quantity mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn small_workload(seed: u64) -> SiloWorkload {
        SiloWorkload { transactions: 120, seed, ..SiloWorkload::default() }
    }

    fn run(app: Silo, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(app)
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("silo must match the serial transaction execution")
    }

    #[test]
    fn serial_reference_is_consistent() {
        let silo = Silo::new(small_workload(7));
        // Payments conserve money: total customer balance decrease equals
        // warehouse + district ytd increase... district and warehouse both
        // get the full amount, so ytd sums are equal.
        let w_total: u64 = silo.reference.warehouse_ytd.iter().sum();
        let d_total: u64 = silo.reference.district_ytd.iter().sum();
        assert_eq!(w_total, d_total);
    }

    #[test]
    fn matches_serial_on_one_core() {
        run(Silo::new(small_workload(8)), Scheduler::Random, 1);
    }

    #[test]
    fn matches_serial_under_all_schedulers() {
        for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            run(Silo::new(small_workload(9)), s, 16);
        }
    }

    #[test]
    fn transactions_spawn_per_tuple_tasks() {
        let stats = run(Silo::new(small_workload(10)), Scheduler::Hints, 16);
        // Every new-order spawns 2 tasks per item plus the root; payments
        // spawn 2 children; so committed tasks far exceed transactions.
        assert!(stats.tasks_committed > 300);
    }
}
