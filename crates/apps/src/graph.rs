//! Graph representation, synthetic graph generators and serial reference
//! algorithms for the graph-analytics benchmarks (bfs, sssp, astar, color).
//!
//! The paper uses large public inputs (DIMACS road networks, a hugetric mesh,
//! the com-youtube social graph). Those are unavailable here and far too
//! large for laptop-scale simulation, so we generate synthetic graphs of the
//! same *shape*: grid-with-shortcuts "road" graphs (planar, bounded degree,
//! long diameter) and preferential-attachment "social" graphs (skewed degree
//! distribution, short diameter). See DESIGN.md for the substitution record.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Distance value for unreached vertices.
pub const UNREACHED: u64 = u64::MAX;

/// A weighted directed graph in CSR form (all generators produce symmetric
/// edge sets, so the graphs are effectively undirected).
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<u32>,
    /// Planar coordinates of each vertex (used by the A* heuristic; social
    /// graphs get pseudo-coordinates).
    pub coords: Vec<(i64, i64)>,
}

impl Graph {
    /// Build a graph from an edge list. Duplicate edges are kept.
    pub fn from_edges(
        num_vertices: usize,
        edges: &[(u32, u32, u32)],
        coords: Vec<(i64, i64)>,
    ) -> Self {
        assert_eq!(coords.len(), num_vertices, "one coordinate per vertex");
        let mut degree = vec![0usize; num_vertices];
        for &(src, _, _) in edges {
            degree[src as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0usize);
        for v in 0..num_vertices {
            offsets.push(offsets[v] + degree[v]);
        }
        let mut targets = vec![0u32; edges.len()];
        let mut weights = vec![0u32; edges.len()];
        let mut cursor = offsets.clone();
        for &(src, dst, w) in edges {
            let slot = cursor[src as usize];
            targets[slot] = dst;
            weights[slot] = w;
            cursor[src as usize] += 1;
        }
        Graph { offsets, targets, weights, coords }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        (lo..hi).map(move |i| (self.targets[i], self.weights[i]))
    }

    /// Maximum out-degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    // --------------------------------------------------------------
    // Generators
    // --------------------------------------------------------------

    /// A road-network-like graph: a `width` × `height` grid with unit-ish
    /// weights plus a sprinkling of random shortcut edges.
    pub fn road_grid(width: usize, height: usize, seed: u64) -> Self {
        let n = width * height;
        let mut rng = SmallRng::seed_from_u64(seed);
        let idx = |x: usize, y: usize| (y * width + x) as u32;
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        let push_undirected = |edges: &mut Vec<(u32, u32, u32)>, a: u32, b: u32, w: u32| {
            edges.push((a, b, w));
            edges.push((b, a, w));
        };
        for y in 0..height {
            for x in 0..width {
                let v = idx(x, y);
                if x + 1 < width {
                    push_undirected(&mut edges, v, idx(x + 1, y), 1 + rng.gen_range(0..4));
                }
                if y + 1 < height {
                    push_undirected(&mut edges, v, idx(x, y + 1), 1 + rng.gen_range(0..4));
                }
            }
        }
        // Shortcut edges (highways): ~2% of vertices get a longer-range edge.
        let shortcuts = (n / 50).max(1);
        for _ in 0..shortcuts {
            let a = rng.gen_range(0..n) as u32;
            let b = rng.gen_range(0..n) as u32;
            if a != b {
                let (ax, ay) = (a as usize % width, a as usize / width);
                let (bx, by) = (b as usize % width, b as usize / width);
                let dist = (ax.abs_diff(bx) + ay.abs_diff(by)) as u32;
                push_undirected(&mut edges, a, b, dist.max(1));
            }
        }
        let coords = (0..n).map(|v| ((v % width) as i64, (v / width) as i64)).collect::<Vec<_>>();
        Graph::from_edges(n, &edges, coords)
    }

    /// A social-network-like graph built by preferential attachment, with the
    /// maximum degree capped (so the fine-grain `color` forbidden-set fits in
    /// a fixed number of words).
    pub fn social(n: usize, edges_per_vertex: usize, max_degree: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        let mut degree = vec![0usize; n];
        // Endpoint pool for preferential attachment.
        let mut pool: Vec<u32> = vec![0, 1];
        edges.push((0, 1, 1));
        edges.push((1, 0, 1));
        degree[0] += 1;
        degree[1] += 1;
        for v in 2..n as u32 {
            let mut attached = 0;
            let mut tries = 0;
            while attached < edges_per_vertex && tries < edges_per_vertex * 10 {
                tries += 1;
                let target = if rng.gen_bool(0.8) {
                    pool[rng.gen_range(0..pool.len())]
                } else {
                    rng.gen_range(0..v)
                };
                if target == v
                    || degree[target as usize] >= max_degree
                    || degree[v as usize] >= max_degree
                {
                    continue;
                }
                edges.push((v, target, 1));
                edges.push((target, v, 1));
                degree[v as usize] += 1;
                degree[target as usize] += 1;
                pool.push(target);
                pool.push(v);
                attached += 1;
            }
        }
        let side = (n as f64).sqrt().ceil() as i64;
        let coords = (0..n).map(|v| ((v as i64) % side, (v as i64) / side)).collect();
        Graph::from_edges(n, &edges, coords)
    }

    // --------------------------------------------------------------
    // Serial reference algorithms
    // --------------------------------------------------------------

    /// Breadth-first levels from `src` (level = number of hops).
    pub fn bfs_levels(&self, src: u32) -> Vec<u64> {
        let mut level = vec![UNREACHED; self.num_vertices()];
        let mut queue = std::collections::VecDeque::new();
        level[src as usize] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            let next = level[v as usize] + 1;
            for (n, _) in self.neighbors(v) {
                if level[n as usize] == UNREACHED {
                    level[n as usize] = next;
                    queue.push_back(n);
                }
            }
        }
        level
    }

    /// Dijkstra shortest-path distances from `src`.
    pub fn dijkstra(&self, src: u32) -> Vec<u64> {
        let mut dist = vec![UNREACHED; self.num_vertices()];
        let mut heap = BinaryHeap::new();
        dist[src as usize] = 0;
        heap.push(Reverse((0u64, src)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for (n, w) in self.neighbors(v) {
                let nd = d + w as u64;
                if nd < dist[n as usize] {
                    dist[n as usize] = nd;
                    heap.push(Reverse((nd, n)));
                }
            }
        }
        dist
    }

    /// Admissible A* heuristic between two vertices: the straight-line
    /// (Chebyshev) distance, which never exceeds the true path length because
    /// every generated edge has weight >= 1 per unit of coordinate distance
    /// ... conservatively, we use the Chebyshev distance which is a lower
    /// bound on hop count.
    pub fn heuristic(&self, v: u32, target: u32) -> u64 {
        let (vx, vy) = self.coords[v as usize];
        let (tx, ty) = self.coords[target as usize];
        (vx.abs_diff(tx)).max(vy.abs_diff(ty))
    }

    /// Greedy largest-degree-first coloring (the serial reference for
    /// `color`): vertices are processed in rank order (degree descending,
    /// id ascending) and take the smallest color unused by already-colored
    /// neighbors.
    pub fn greedy_color(&self) -> Vec<u64> {
        let order = self.color_rank_order();
        let mut color = vec![UNREACHED; self.num_vertices()];
        for &v in &order {
            let mut used = vec![false; self.degree(v) + 1];
            for (n, _) in self.neighbors(v) {
                let c = color[n as usize];
                if c != UNREACHED && (c as usize) < used.len() {
                    used[c as usize] = true;
                }
            }
            let c = used.iter().position(|&u| !u).unwrap_or(used.len());
            color[v as usize] = c as u64;
        }
        color
    }

    /// Vertices ordered by coloring rank (degree descending, id ascending).
    pub fn color_rank_order(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.num_vertices() as u32).collect();
        order.sort_by_key(|&v| (Reverse(self.degree(v)), v));
        order
    }

    /// The coloring rank of every vertex (inverse permutation of
    /// [`Graph::color_rank_order`]).
    pub fn color_ranks(&self) -> Vec<u64> {
        let order = self.color_rank_order();
        let mut rank = vec![0u64; self.num_vertices()];
        for (r, &v) in order.iter().enumerate() {
            rank[v as usize] = r as u64;
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_grid_has_expected_shape() {
        let g = Graph::road_grid(8, 6, 1);
        assert_eq!(g.num_vertices(), 48);
        // Interior vertices have degree >= 4 (grid edges are symmetric).
        assert!(g.degree(9) >= 4);
        assert!(g.num_edges() >= 2 * (7 * 6 + 8 * 5));
        assert_eq!(g.coords[9], (1, 1));
    }

    #[test]
    fn social_graph_is_skewed_but_capped() {
        let g = Graph::social(300, 3, 40, 7);
        assert_eq!(g.num_vertices(), 300);
        assert!(g.max_degree() <= 40);
        // Preferential attachment should produce at least one hub much more
        // connected than the median vertex.
        let mut degrees: Vec<usize> = (0..300u32).map(|v| g.degree(v)).collect();
        degrees.sort_unstable();
        assert!(degrees[299] >= 3 * degrees[150].max(1));
    }

    #[test]
    fn bfs_levels_on_grid_are_manhattan_distance() {
        let g = Graph::road_grid(5, 5, 3);
        let levels = g.bfs_levels(0);
        assert_eq!(levels[0], 0);
        // Without shortcuts the level of (x, y) is x + y; shortcuts can only
        // reduce it.
        for y in 0..5usize {
            for x in 0..5usize {
                assert!(levels[y * 5 + x] <= (x + y) as u64);
                assert_ne!(levels[y * 5 + x], UNREACHED);
            }
        }
    }

    #[test]
    fn dijkstra_distances_are_triangle_consistent() {
        let g = Graph::road_grid(10, 10, 5);
        let dist = g.dijkstra(0);
        for v in 0..g.num_vertices() as u32 {
            for (n, w) in g.neighbors(v) {
                assert!(
                    dist[n as usize] <= dist[v as usize].saturating_add(w as u64),
                    "triangle inequality violated on edge {v}->{n}"
                );
            }
        }
    }

    #[test]
    fn heuristic_is_admissible_on_grid() {
        let g = Graph::road_grid(8, 8, 2);
        let target = 63u32;
        let dist_to_target = g.dijkstra(target);
        for v in 0..64u32 {
            assert!(
                g.heuristic(v, target) <= dist_to_target[v as usize],
                "heuristic overestimates at {v}"
            );
        }
    }

    #[test]
    fn greedy_coloring_is_proper() {
        let g = Graph::social(200, 3, 50, 11);
        let colors = g.greedy_color();
        for v in 0..g.num_vertices() as u32 {
            for (n, _) in g.neighbors(v) {
                assert_ne!(colors[v as usize], colors[n as usize], "edge {v}-{n} monochromatic");
            }
        }
        // Greedy coloring uses at most max_degree + 1 colors.
        let max_color = colors.iter().max().copied().unwrap();
        assert!(max_color <= g.max_degree() as u64);
    }

    #[test]
    fn color_ranks_are_a_permutation() {
        let g = Graph::social(100, 2, 30, 13);
        let ranks = g.color_ranks();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100u64).collect::<Vec<_>>());
        // Highest-degree vertex has rank 0.
        let hub = (0..100u32).max_by_key(|&v| (g.degree(v), Reverse(v))).unwrap();
        assert_eq!(ranks[hub as usize], 0);
    }
}
