//! A small, strict JSON value model, parser and writer.
//!
//! The offline build has no serde_json; until this crate, the repo's JSON
//! support was write-only (`summary --json`, `swarm bench`). The serving
//! protocol needs to *read* JSON too, so this module adds the missing half:
//! a recursive-descent parser that accepts exactly the JSON grammar —
//! no trailing garbage, no duplicate object keys, no unquoted anything —
//! and reports the byte offset of the first problem.
//!
//! Integers are kept exact: a number without fraction or exponent parses to
//! [`Value::UInt`]/[`Value::Int`], so 64-bit seeds and cycle counts round-
//! trip bit-for-bit instead of sagging through an `f64`.

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects). Protocol
/// messages nest a handful of levels; the bound keeps adversarial input
/// from overflowing the parse stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer with no fraction or exponent.
    UInt(u64),
    /// A negative integer with no fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The fields of an object, or `None` for any other variant.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, or `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Look a field up in an object (`None` if absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Render this value as compact JSON (no whitespace). This is the
    /// protocol wire form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, false);
        out
    }

    /// Render with a space after each `:` and `,` — the style of the
    /// committed `BENCH_*.json` snapshots.
    pub fn render_spaced(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, true);
        out
    }

    fn write(&self, out: &mut String, spaced: bool) {
        let pad = if spaced { " " } else { "" };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                // `{:?}` prints the shortest string that round-trips, and
                // always includes a `.` or exponent, so the reader maps it
                // back to Float. Non-finite values are not valid JSON; the
                // protocol never produces them.
                debug_assert!(v.is_finite(), "non-finite float in JSON value");
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        out.push_str(pad);
                    }
                    item.write(out, spaced);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        out.push_str(pad);
                    }
                    write_escaped(out, k);
                    out.push(':');
                    out.push_str(pad);
                    v.write(out, spaced);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed: the byte offset of the first problem and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parse exactly one JSON value; trailing whitespace is allowed, anything
/// else after the value is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] naming the first offending byte offset for any
/// deviation from the JSON grammar, duplicate object keys, numbers that do
/// not fit the exact integer types when written as integers, or nesting
/// deeper than an internal bound.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_at,
                    message: format!("duplicate object key \"{key}\""),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate escape"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate escape"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut exact = true;
        if self.peek() == Some(b'.') {
            exact = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            exact = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        if exact {
            if negative {
                text.parse::<i64>().map(Value::Int).map_err(|_| JsonError {
                    offset: start,
                    message: format!("integer {text} does not fit in i64"),
                })
            } else {
                text.parse::<u64>().map(Value::UInt).map_err(|_| JsonError {
                    offset: start,
                    message: format!("integer {text} does not fit in u64"),
                })
            }
        } else {
            let v: f64 = text.parse().map_err(|_| JsonError {
                offset: start,
                message: format!("invalid number {text}"),
            })?;
            if !v.is_finite() {
                return Err(JsonError {
                    offset: start,
                    message: format!("number {text} overflows f64"),
                });
            }
            Ok(Value::Float(v))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let text = v.render();
        let back = parse(&text).unwrap_or_else(|e| panic!("reparsing {text}: {e}"));
        assert_eq!(&back, v, "round-trip through {text}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::UInt(0),
            Value::UInt(u64::MAX),
            Value::Int(-1),
            Value::Int(i64::MIN),
            Value::Float(0.5),
            Value::Float(-1234.75),
            Value::str("hello"),
            Value::str("quo\"te \\ back\nslash\ttab\u{1F600}"),
            Value::str(""),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn u64_values_stay_exact() {
        // The whole reason for UInt: seeds like 0xF1605 and cycle counts
        // near 2^63 must not sag through an f64.
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Value::UInt(u64::MAX));
        assert_eq!(v.render(), "18446744073709551615");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::str("serve")),
            ("counts".into(), Value::Arr(vec![Value::UInt(1), Value::UInt(2)])),
            (
                "inner".into(),
                Value::Obj(vec![("ok".into(), Value::Bool(true)), ("x".into(), Value::Null)]),
            ),
        ]);
        round_trip(&v);
    }

    #[test]
    fn parser_is_strict() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1 \"b\":2}",
            "{\"a\":1} trailing",
            "'single'",
            "{a:1}",
            "01",
            "1.",
            "+1",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{\"dup\":1,\"dup\":2}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("{\"a\": nope}").unwrap_err();
        assert_eq!(err.offset, 6, "{err}");
        let err = parse("{\"dup\":1,\"dup\":2}").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn surrogate_pairs_parse() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::str("\u{1F600}"));
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate rejected");
    }

    #[test]
    fn spaced_rendering_differs_only_in_whitespace() {
        let v = Value::Obj(vec![
            ("name".into(), Value::str("x")),
            ("ns_per_op".into(), Value::Float(8.3)),
        ]);
        assert_eq!(v.render(), "{\"name\":\"x\",\"ns_per_op\":8.3}");
        assert_eq!(v.render_spaced(), "{\"name\": \"x\", \"ns_per_op\": 8.3}");
        assert_eq!(parse(&v.render_spaced()).unwrap(), v);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}
