//! Fairness-aware multi-tenant work queue.
//!
//! Each client gets its own FIFO lane; the dispatcher drains lanes
//! round-robin, taking at most `per_client` items from each lane per
//! batch. A client submitting a 500-point matrix therefore cannot starve
//! a client submitting 2 points: the small matrix is interleaved after at
//! most one batch of the large one.

use std::collections::VecDeque;

/// A round-robin queue of per-client FIFO lanes.
pub struct FairQueue<T> {
    lanes: VecDeque<(u64, VecDeque<T>)>,
}

impl<T> Default for FairQueue<T> {
    fn default() -> Self {
        FairQueue { lanes: VecDeque::new() }
    }
}

impl<T> FairQueue<T> {
    /// Create an empty queue.
    pub fn new() -> FairQueue<T> {
        FairQueue::default()
    }

    /// Append `items` to `client`'s lane, creating the lane (at the back
    /// of the rotation) if this is the client's first pending work.
    pub fn push(&mut self, client: u64, items: impl IntoIterator<Item = T>) {
        if let Some((_, lane)) = self.lanes.iter_mut().find(|(id, _)| *id == client) {
            lane.extend(items);
        } else {
            let lane: VecDeque<T> = items.into_iter().collect();
            if !lane.is_empty() {
                self.lanes.push_back((client, lane));
            }
        }
    }

    /// Take the next batch: visit each lane at most once in rotation
    /// order, taking up to `per_client` items from each, stopping at
    /// `max_total` items. Lanes left non-empty rotate to the back.
    pub fn next_batch(&mut self, per_client: usize, max_total: usize) -> Vec<T> {
        let mut batch = Vec::new();
        let lanes_at_start = self.lanes.len();
        for _ in 0..lanes_at_start {
            if batch.len() >= max_total {
                break;
            }
            let Some((client, mut lane)) = self.lanes.pop_front() else { break };
            let take = per_client.min(max_total - batch.len());
            for _ in 0..take {
                match lane.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if !lane.is_empty() {
                self.lanes.push_back((client, lane));
            }
        }
        batch
    }

    /// Total items pending across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|(_, lane)| lane.len()).sum()
    }

    /// Whether no work is pending.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_clients() {
        let mut q = FairQueue::new();
        q.push(1, ["a1", "a2", "a3", "a4"]);
        q.push(2, ["b1", "b2"]);
        assert_eq!(q.next_batch(1, 10), vec!["a1", "b1"]);
        assert_eq!(q.next_batch(1, 10), vec!["a2", "b2"]);
        // Client 2 is drained; client 1 keeps its FIFO order.
        assert_eq!(q.next_batch(1, 10), vec!["a3"]);
        assert_eq!(q.next_batch(1, 10), vec!["a4"]);
        assert!(q.is_empty());
    }

    #[test]
    fn large_matrix_cannot_starve_a_small_one() {
        let mut q = FairQueue::new();
        q.push(1, (0..500).map(|i| (1u64, i)));
        q.push(2, [(2u64, 0), (2u64, 1)]);
        let batch = q.next_batch(4, 16);
        // The small client's work appears in the very first batch.
        assert!(batch.iter().filter(|(c, _)| *c == 2).count() == 2, "{batch:?}");
        assert_eq!(batch.len(), 6);
    }

    #[test]
    fn max_total_bounds_the_batch() {
        let mut q = FairQueue::new();
        q.push(1, 0..10);
        q.push(2, 10..20);
        let batch = q.next_batch(8, 10);
        assert_eq!(batch.len(), 10);
        assert_eq!(q.len(), 10);
        // Each lane was visited at most once: 8 from client 1, 2 from 2.
        assert_eq!(batch, vec![0, 1, 2, 3, 4, 5, 6, 7, 10, 11]);
    }

    #[test]
    fn push_appends_to_an_existing_lane_without_resetting_rotation() {
        let mut q = FairQueue::new();
        q.push(1, ["a1"]);
        q.push(2, ["b1"]);
        q.push(1, ["a2"]);
        assert_eq!(q.next_batch(2, 2), vec!["a1", "a2"]);
        assert_eq!(q.next_batch(2, 2), vec!["b1"]);
    }

    #[test]
    fn empty_push_creates_no_lane() {
        let mut q: FairQueue<u32> = FairQueue::new();
        q.push(1, []);
        assert!(q.is_empty());
        assert_eq!(q.next_batch(4, 4), Vec::<u32>::new());
    }
}
