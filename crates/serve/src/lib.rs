//! A long-lived simulation service with a content-addressed result cache.
//!
//! Every run in this reproduction is deterministic and fully described by
//! its [`RunPoint`] (app × scheduler × cores × scale × seed × NoC model ×
//! fault plan). This crate turns that property into a service:
//!
//! * [`proto`] — a line-delimited JSON protocol (strict parser + writer,
//!   hand-rolled: the offline build has no serde_json) with typed request,
//!   event, and error messages;
//! * [`cache`] — a content-addressed [`ResultCache`]: the canonical key of
//!   a run point ([`swarm_types::canon`]) addresses completed
//!   [`RunStats`](swarm_sim::RunStats) in memory and, with `--cache-dir`,
//!   on disk, so repeated and overlapping requests are served without
//!   re-simulation;
//! * [`queue`] — a fairness-aware multi-tenant [`FairQueue`]: per-client
//!   round-robin with bounded in-flight points, so one large matrix cannot
//!   starve small interactive requests;
//! * [`exec`] — the [`PointRunner`] seam the server schedules points
//!   through; `swarm_bench` implements it on top of its work-sharing
//!   `Pool` (the dependency points *up* from this crate so the registry
//!   can host the `serve` subcommand);
//! * [`server`] — the [`Server`] itself: a stdin/stdout pipe mode and a
//!   `std::net` TCP listener mode, both speaking the same protocol, with
//!   cross-client deduplication of in-flight points.
//!
//! The `swarm serve` subcommand and the `swarm bench-serve` load generator
//! live in `swarm_bench::figures`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod exec;
pub mod json;
pub mod point;
pub mod proto;
pub mod queue;
pub mod server;

pub use cache::{CacheCounters, ResultCache};
pub use exec::{PointOutcome, PointRunner};
pub use json::{JsonError, Value};
pub use point::RunPoint;
pub use proto::{
    parse_event, parse_request, CacheReport, CacheSource, Event, FailureKind, PointFailure,
    ProtoError, Request, SubmitRequest,
};
pub use queue::FairQueue;
pub use server::{PipeSummary, ServeOptions, Server, TcpServer};
