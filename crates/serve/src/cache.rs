//! Content-addressed result cache.
//!
//! A completed [`RunStats`] is stored under the [`CanonKey`] of the
//! [`RunPoint`](crate::RunPoint) that produced it. Because every
//! simulation in this reproduction is deterministic, equal keys imply
//! byte-identical results, so a cache hit is indistinguishable from a
//! fresh run — the property the cache-correctness tests pin down.
//!
//! Two tiers:
//!
//! * **memory** — a bounded [`FastHashMap`]; eviction is least-recently
//!   *used* (every hit refreshes a monotonic stamp; the minimum stamp is
//!   evicted when over capacity).
//! * **disk** (optional) — one `<canon-key-hex>.json` file per entry under
//!   the cache directory, written atomically (temp file + rename). Disk
//!   entries survive server restarts; a disk hit is promoted back into
//!   memory.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use swarm_sim::RunStats;
use swarm_types::{CanonKey, FastHashMap};

use crate::json;
use crate::proto::{stats_from_json, stats_to_json, CacheSource};

/// Monotonic counters describing cache behaviour since startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Subset of `hits` answered from the on-disk store.
    pub disk_hits: u64,
    /// Memory entries evicted to stay under capacity.
    pub evictions: u64,
    /// Results inserted.
    pub inserts: u64,
}

struct Entry {
    stats: RunStats,
    stamp: u64,
}

/// A bounded in-memory result store with an optional on-disk second tier.
pub struct ResultCache {
    capacity: usize,
    dir: Option<PathBuf>,
    map: FastHashMap<CanonKey, Entry>,
    stamp: u64,
    counters: CacheCounters,
}

impl ResultCache {
    /// Create a cache holding at most `capacity` in-memory entries
    /// (clamped to at least 1). When `dir` is given the directory is
    /// created and used as a persistent second tier.
    ///
    /// # Errors
    ///
    /// Fails only if the cache directory cannot be created.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> io::Result<ResultCache> {
        if let Some(d) = &dir {
            fs::create_dir_all(d)?;
        }
        Ok(ResultCache {
            capacity: capacity.max(1),
            dir,
            map: FastHashMap::default(),
            stamp: 0,
            counters: CacheCounters::default(),
        })
    }

    fn bump(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Look up a result, counting the outcome. A memory hit refreshes the
    /// entry's recency; a disk hit promotes the entry into memory.
    pub fn lookup(&mut self, key: CanonKey) -> Option<(RunStats, CacheSource)> {
        let stamp = self.bump();
        if let Some(entry) = self.map.get_mut(&key) {
            entry.stamp = stamp;
            self.counters.hits += 1;
            return Some((entry.stats.clone(), CacheSource::Memory));
        }
        if let Some(stats) = self.load_from_disk(key) {
            self.counters.hits += 1;
            self.counters.disk_hits += 1;
            self.put_in_memory(key, stats.clone());
            return Some((stats, CacheSource::Disk));
        }
        self.counters.misses += 1;
        None
    }

    /// Memory-only lookup with no counter or recency side effects. Used
    /// when a waiter re-checks a key another client was simulating — the
    /// hit was already tallied when the waiter first resolved the point.
    pub fn peek(&self, key: CanonKey) -> Option<RunStats> {
        self.map.get(&key).map(|e| e.stats.clone())
    }

    /// Insert a completed result, writing through to disk when configured
    /// and evicting the least-recently-used memory entry if over capacity.
    pub fn insert(&mut self, key: CanonKey, stats: RunStats) {
        self.counters.inserts += 1;
        if let Some(dir) = self.dir.clone() {
            // Disk write errors are deliberately non-fatal: the cache is an
            // accelerator, and a full disk must not fail the simulation
            // whose result we are storing.
            let _ = write_entry(&dir, key, &stats);
        }
        self.put_in_memory(key, stats);
    }

    fn put_in_memory(&mut self, key: CanonKey, stats: RunStats) {
        let stamp = self.bump();
        self.map.insert(key, Entry { stats, stamp });
        while self.map.len() > self.capacity {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k)
                .expect("map is over capacity, so it is non-empty");
            self.map.remove(&oldest);
            self.counters.evictions += 1;
        }
    }

    fn load_from_disk(&self, key: CanonKey) -> Option<RunStats> {
        let dir = self.dir.as_ref()?;
        let text = fs::read_to_string(entry_path(dir, key)).ok()?;
        // A corrupt or truncated file is treated as a miss; the point is
        // re-simulated and the entry rewritten.
        let value = json::parse(&text).ok()?;
        stats_from_json(&value).ok()
    }

    /// Counters since startup.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn entry_path(dir: &Path, key: CanonKey) -> PathBuf {
    dir.join(format!("{}.json", key.hex()))
}

fn write_entry(dir: &Path, key: CanonKey, stats: &RunStats) -> io::Result<()> {
    let final_path = entry_path(dir, key);
    let tmp_path = dir.join(format!("{}.tmp.{}", key.hex(), std::process::id()));
    {
        let mut file = fs::File::create(&tmp_path)?;
        file.write_all(stats_to_json(stats).render().as_bytes())?;
        file.write_all(b"\n")?;
    }
    fs::rename(&tmp_path, &final_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("swarm_serve_cache_{}_{}_{}", std::process::id(), tag, n))
    }

    fn key(n: u64) -> CanonKey {
        CanonKey { hi: n, lo: !n }
    }

    fn stats(tag: &str) -> RunStats {
        RunStats { app: tag.to_string(), tasks_committed: tag.len() as u64, ..RunStats::default() }
    }

    #[test]
    fn memory_hit_and_miss_counting() {
        let mut cache = ResultCache::new(8, None).unwrap();
        assert!(cache.lookup(key(1)).is_none());
        cache.insert(key(1), stats("a"));
        let (got, source) = cache.lookup(key(1)).unwrap();
        assert_eq!(got, stats("a"));
        assert_eq!(source, CacheSource::Memory);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.disk_hits, c.inserts), (1, 1, 0, 1));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = ResultCache::new(2, None).unwrap();
        cache.insert(key(1), stats("one"));
        cache.insert(key(2), stats("two"));
        // Touch key 1 so key 2 becomes the oldest.
        assert!(cache.lookup(key(1)).is_some());
        cache.insert(key(3), stats("three"));
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(key(2)).is_none(), "LRU entry should be evicted");
        assert!(cache.peek(key(1)).is_some());
        assert!(cache.peek(key(3)).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut cache = ResultCache::new(8, None).unwrap();
        cache.insert(key(1), stats("a"));
        let before = cache.counters();
        assert!(cache.peek(key(1)).is_some());
        assert!(cache.peek(key(2)).is_none());
        assert_eq!(cache.counters(), before);
    }

    #[test]
    fn disk_round_trip_and_promotion() {
        let dir = temp_dir("round_trip");
        {
            let mut cache = ResultCache::new(8, Some(dir.clone())).unwrap();
            cache.insert(key(7), stats("persisted"));
        }
        // A fresh cache instance (empty memory) finds the entry on disk.
        let mut cache = ResultCache::new(8, Some(dir.clone())).unwrap();
        let (got, source) = cache.lookup(key(7)).unwrap();
        assert_eq!(got, stats("persisted"));
        assert_eq!(source, CacheSource::Disk);
        assert_eq!(cache.counters().disk_hits, 1);
        // Promoted: the second lookup is a memory hit.
        let (_, source) = cache.lookup(key(7)).unwrap();
        assert_eq!(source, CacheSource::Memory);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_entry_is_a_miss() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(entry_path(&dir, key(9)), "{\"scheduler\":\"Hints\"").unwrap();
        let mut cache = ResultCache::new(8, Some(dir.clone())).unwrap();
        assert!(cache.lookup(key(9)).is_none());
        assert_eq!(cache.counters().misses, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
