//! The job server: pipe mode, TCP mode, and the shared scheduling core.
//!
//! One [`Server`] owns the [`ResultCache`], the [`FairQueue`], and the
//! in-flight bookkeeping; any number of client handlers (one per pipe or
//! TCP connection) submit work to it. A dedicated dispatcher thread pulls
//! fair batches off the queue and runs them through the [`PointRunner`];
//! handlers block on a condvar until their points complete.
//!
//! Cross-client deduplication: when a point is already running for one
//! client, a second client submitting the same point *waits* for the
//! first run instead of re-simulating — the cache-correctness tests
//! assert every distinct point is simulated at most once even under
//! concurrent overlapping matrices.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use swarm_sim::RunStats;
use swarm_types::{CanonKey, Canonical, FastHashMap, FastHashSet};

use crate::cache::ResultCache;
use crate::exec::PointRunner;
use crate::point::RunPoint;
use crate::proto::{
    parse_request, render_event, CacheReport, CacheSource, Event, PointFailure, Request,
};
use crate::queue::FairQueue;

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// In-memory cache capacity (entries).
    pub mem_entries: usize,
    /// On-disk cache directory (second tier) — `None` disables it.
    pub cache_dir: Option<PathBuf>,
    /// Max points taken from one client's lane per dispatch batch.
    pub inflight_per_client: usize,
    /// Max points per dispatch batch across all clients.
    pub batch_points: usize,
    /// Emit one `progress` event per this many GVT updates.
    pub progress_every: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            mem_entries: 1024,
            cache_dir: None,
            inflight_per_client: 4,
            batch_points: 16,
            progress_every: 64,
        }
    }
}

struct Job {
    point: RunPoint,
    key: CanonKey,
}

struct State {
    cache: ResultCache,
    /// Keys currently being simulated (by the dispatcher or inline by a
    /// progress-mode handler).
    running: FastHashSet<CanonKey>,
    /// Failures are memoized for the server's lifetime: runs are
    /// deterministic, so resubmitting a failing point would fail
    /// identically.
    failed: FastHashMap<CanonKey, PointFailure>,
    queue: FairQueue<Job>,
    clients: u64,
    next_client: u64,
    stop: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when work is queued (or on shutdown): wakes the dispatcher.
    work_cv: Condvar,
    /// Signalled when any point completes: wakes waiting handlers.
    done_cv: Condvar,
}

/// How a submitted point will be satisfied for this request.
///
/// `Ready` holds the full [`RunStats`] inline; one resolution exists per
/// point per submission, so the variant size skew doesn't justify a box.
#[allow(clippy::large_enum_variant)]
enum Resolution {
    /// Already cached (or already failed): served immediately.
    Ready(RunStats, CacheSource),
    /// Failed earlier this session; the memoized failure is served.
    Failed(PointFailure),
    /// This request owns the simulation (it was queued, or will run
    /// inline in progress mode).
    Owned,
    /// Another in-flight request owns the same point; wait for it.
    Waiting,
}

/// The scheduling core shared by all transports.
pub struct Server<R: PointRunner> {
    runner: Arc<R>,
    shared: Arc<Shared>,
    options: ServeOptions,
}

/// What a pipe-mode session saw, for exit-code mapping in `swarm_bench`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeSummary {
    /// At least one line failed to parse as a request.
    pub saw_protocol_error: bool,
    /// At least one submitted point was invalid.
    pub saw_invalid_point: bool,
    /// At least one point failed at simulation time.
    pub saw_run_failure: bool,
}

impl<R: PointRunner + 'static> Server<R> {
    /// Create a server scheduling on `runner`.
    ///
    /// # Errors
    ///
    /// Fails only if the cache directory cannot be created.
    pub fn new(runner: R, options: ServeOptions) -> io::Result<Server<R>> {
        let cache = ResultCache::new(options.mem_entries, options.cache_dir.clone())?;
        Ok(Server {
            runner: Arc::new(runner),
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    cache,
                    running: FastHashSet::default(),
                    failed: FastHashMap::default(),
                    queue: FairQueue::new(),
                    clients: 0,
                    next_client: 0,
                    stop: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            options,
        })
    }

    fn spawn_dispatcher(&self) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let runner = Arc::clone(&self.runner);
        let per_client = self.options.inflight_per_client.max(1);
        let max_total = self.options.batch_points.max(1);
        std::thread::spawn(move || loop {
            let batch = {
                let mut state = shared.state.lock().unwrap();
                loop {
                    if state.stop && state.queue.is_empty() {
                        return;
                    }
                    let batch = state.queue.next_batch(per_client, max_total);
                    if !batch.is_empty() {
                        break batch;
                    }
                    state = shared.work_cv.wait(state).unwrap();
                }
            };
            let points: Vec<RunPoint> = batch.iter().map(|j| j.point).collect();
            let outcomes = runner.run_batch(&points);
            let mut state = shared.state.lock().unwrap();
            for (job, outcome) in batch.iter().zip(outcomes) {
                complete(&mut state, job.key, outcome);
            }
            drop(state);
            shared.done_cv.notify_all();
        })
    }

    fn stop_dispatcher(&self, handle: JoinHandle<()>) {
        self.shared.state.lock().unwrap().stop = true;
        self.shared.work_cv.notify_all();
        let _ = handle.join();
    }

    /// Serve one session over an arbitrary reader/writer pair (stdin and
    /// stdout in `swarm serve` pipe mode). Returns when the input is
    /// exhausted or the client sends `shutdown`.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors writing events to `writer`.
    pub fn serve_pipe(
        &self,
        reader: impl BufRead,
        mut writer: impl Write,
    ) -> io::Result<PipeSummary> {
        let dispatcher = self.spawn_dispatcher();
        let client = self.register_client();
        let mut summary = PipeSummary::default();
        let result = self.session_loop(client, reader, &mut writer, &mut summary);
        self.unregister_client();
        self.stop_dispatcher(dispatcher);
        result.map(|()| summary)
    }

    fn register_client(&self) -> u64 {
        let mut state = self.shared.state.lock().unwrap();
        state.clients += 1;
        let id = state.next_client;
        state.next_client += 1;
        id
    }

    fn unregister_client(&self) {
        self.shared.state.lock().unwrap().clients -= 1;
    }

    /// Read request lines until EOF or `shutdown`, emitting events.
    fn session_loop(
        &self,
        client: u64,
        reader: impl BufRead,
        writer: &mut impl Write,
        summary: &mut PipeSummary,
    ) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse_request(&line) {
                Err(err) => {
                    summary.saw_protocol_error = true;
                    emit(writer, &Event::Protocol(err))?;
                }
                Ok(Request::Stats) => {
                    let state = self.shared.state.lock().unwrap();
                    let c = state.cache.counters();
                    let event = Event::ServerStats {
                        cache: CacheReport {
                            hits: c.hits,
                            misses: c.misses,
                            disk_hits: c.disk_hits,
                            evictions: c.evictions,
                            entries: state.cache.len() as u64,
                        },
                        clients: state.clients,
                    };
                    drop(state);
                    emit(writer, &event)?;
                }
                Ok(Request::Shutdown) => {
                    emit(writer, &Event::Bye)?;
                    break;
                }
                Ok(Request::Submit(submit)) => {
                    self.handle_submit(client, &submit, writer, summary)?;
                }
            }
        }
        Ok(())
    }

    /// Resolve every point of a submission under one lock acquisition,
    /// queue what this request owns, then stream results in order.
    fn handle_submit(
        &self,
        client: u64,
        submit: &crate::proto::SubmitRequest,
        writer: &mut impl Write,
        summary: &mut PipeSummary,
    ) -> io::Result<()> {
        let id = &submit.id;
        emit(writer, &Event::Accepted { id: id.clone(), points: submit.points.len() as u64 })?;

        let keys: Vec<CanonKey> = submit.points.iter().map(Canonical::canon_key).collect();
        let mut report = CacheReport::default();
        let resolutions = {
            let mut state = self.shared.state.lock().unwrap();
            let mut jobs = Vec::new();
            let mut owned_this_submit: FastHashSet<CanonKey> = FastHashSet::default();
            let resolutions: Vec<Resolution> = submit
                .points
                .iter()
                .zip(&keys)
                .map(|(&point, &key)| {
                    if let Some(failure) = state.failed.get(&key) {
                        report.hits += 1;
                        return Resolution::Failed(failure.clone());
                    }
                    if let Some((stats, source)) = state.cache.lookup(key) {
                        report.hits += 1;
                        if source == CacheSource::Disk {
                            report.disk_hits += 1;
                        }
                        return Resolution::Ready(stats, source);
                    }
                    if state.running.contains(&key) || owned_this_submit.contains(&key) {
                        // Someone (possibly an earlier index of this very
                        // matrix) is already simulating this point.
                        report.hits += 1;
                        return Resolution::Waiting;
                    }
                    state.running.insert(key);
                    owned_this_submit.insert(key);
                    report.misses += 1;
                    if !submit.progress {
                        jobs.push(Job { point, key });
                    }
                    Resolution::Owned
                })
                .collect();
            state.queue.push(client, jobs);
            resolutions
        };
        self.shared.work_cv.notify_all();

        let mut ok = 0u64;
        let mut failed = 0u64;
        for (index, ((point, key), resolution)) in
            submit.points.iter().zip(&keys).zip(resolutions).enumerate()
        {
            let index = index as u64;
            emit(writer, &Event::PointStarted { id: id.clone(), index })?;
            let outcome: Result<(RunStats, CacheSource), PointFailure> = match resolution {
                Resolution::Ready(stats, source) => Ok((stats, source)),
                Resolution::Failed(failure) => Err(failure),
                Resolution::Owned if submit.progress => {
                    self.run_inline_with_progress(point, *key, id, index, writer)?
                }
                Resolution::Owned => self.wait_for(point, *key, true),
                Resolution::Waiting => self.wait_for(point, *key, false),
            };
            match outcome {
                Ok((stats, source)) => {
                    ok += 1;
                    emit(writer, &Event::PointFinished { id: id.clone(), index, source, stats })?;
                }
                Err(error) => {
                    failed += 1;
                    if error.kind == crate::proto::FailureKind::InvalidPoint {
                        summary.saw_invalid_point = true;
                    } else {
                        summary.saw_run_failure = true;
                    }
                    emit(writer, &Event::PointFailed { id: id.clone(), index, error })?;
                }
            }
        }

        {
            let state = self.shared.state.lock().unwrap();
            report.evictions = state.cache.counters().evictions;
            report.entries = state.cache.len() as u64;
        }
        emit(writer, &Event::RunDone { id: id.clone(), ok, failed, cache: report })
    }

    /// Run an owned point on the handler thread, streaming throttled
    /// `progress` events, then publish the result.
    fn run_inline_with_progress(
        &self,
        point: &RunPoint,
        key: CanonKey,
        id: &str,
        index: u64,
        writer: &mut impl Write,
    ) -> io::Result<Result<(RunStats, CacheSource), PointFailure>> {
        let every = self.options.progress_every.max(1);
        let mut gvt_updates = 0u64;
        let mut pending: Vec<u64> = Vec::new();
        let outcome = self.runner.run_observed(point, &mut |gvt| {
            gvt_updates += 1;
            if gvt_updates.is_multiple_of(every) {
                pending.push(gvt);
            }
        });
        // The observer callback cannot write to the session (the engine
        // may run on another thread); progress events are flushed here,
        // still ahead of the point-finished event.
        for gvt in pending {
            emit(writer, &Event::Progress { id: id.to_string(), index, gvt })?;
        }
        let mut state = self.shared.state.lock().unwrap();
        complete(&mut state, key, outcome.clone());
        drop(state);
        self.shared.done_cv.notify_all();
        Ok(outcome.map(|stats| (stats, CacheSource::Fresh)))
    }

    /// Block until `key` completes (in either direction). The request that
    /// *owned* the simulation reports `Fresh`; dedup waiters report
    /// `Memory`.
    fn wait_for(
        &self,
        point: &RunPoint,
        key: CanonKey,
        owned: bool,
    ) -> Result<(RunStats, CacheSource), PointFailure> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(failure) = state.failed.get(&key) {
                return Err(failure.clone());
            }
            if let Some(stats) = state.cache.peek(key) {
                let source = if owned { CacheSource::Fresh } else { CacheSource::Memory };
                return Ok((stats, source));
            }
            if !state.running.contains(&key) {
                // The run completed but was evicted from memory before this
                // waiter observed it (tiny cache under heavy churn). A full
                // lookup can still hit disk; failing that, re-own the point
                // and simulate it on this thread.
                if let Some((stats, source)) = state.cache.lookup(key) {
                    return Ok((stats, source));
                }
                state.running.insert(key);
                drop(state);
                let outcome = self
                    .runner
                    .run_batch(std::slice::from_ref(point))
                    .pop()
                    .expect("run_batch returns one outcome per point");
                let mut state = self.shared.state.lock().unwrap();
                complete(&mut state, key, outcome.clone());
                drop(state);
                self.shared.done_cv.notify_all();
                return outcome.map(|stats| (stats, CacheSource::Fresh));
            }
            state = self.shared.done_cv.wait(state).unwrap();
        }
    }
}

fn complete(state: &mut State, key: CanonKey, outcome: Result<RunStats, PointFailure>) {
    state.running.remove(&key);
    match outcome {
        Ok(stats) => state.cache.insert(key, stats),
        Err(failure) => {
            state.failed.insert(key, failure);
        }
    }
}

fn emit(writer: &mut impl Write, event: &Event) -> io::Result<()> {
    writer.write_all(render_event(event).as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// A TCP front-end: accepts connections and serves each on its own
/// thread, all sharing one [`Server`] (and therefore one cache).
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start accepting.
    /// The returned handle reports the bound address and stops the server
    /// on [`shutdown`](TcpServer::shutdown) or drop.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn spawn<R: PointRunner + 'static>(
        addr: impl ToSocketAddrs,
        server: Server<R>,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let dispatcher = server.spawn_dispatcher();
        let server = Arc::new(server);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut handlers = Vec::new();
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let server = Arc::clone(&server);
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_tcp_client(&server, stream);
                }));
            }
            for handler in handlers {
                let _ = handler.join();
            }
            server.stop_dispatcher(dispatcher);
        });
        Ok(TcpServer { local_addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, wait for in-flight sessions, and join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept_thread) = self.accept_thread.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = accept_thread.join();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn handle_tcp_client<R: PointRunner + 'static>(
    server: &Server<R>,
    stream: TcpStream,
) -> io::Result<()> {
    let client = server.register_client();
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut summary = PipeSummary::default();
    let result = server.session_loop(client, reader, &mut writer, &mut summary);
    server.unregister_client();
    result
}
