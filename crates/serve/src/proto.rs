//! The line-delimited JSON protocol: typed requests, events, and errors.
//!
//! Every message is one JSON object on one line, tagged by a `"type"`
//! field. Clients send [`Request`]s; the server answers each with a stream
//! of [`Event`]s. Malformed input produces a typed [`ProtoError`] *event*
//! (`{"type":"error",...}`) — never a disconnect — so a scripting client
//! can fix its request and stay on the same connection.
//!
//! ```text
//! client → {"type":"submit","id":"r1","points":[{...},{...}]}
//! server ← {"type":"accepted","id":"r1","points":2}
//! server ← {"type":"point-started","id":"r1","index":0}
//! server ← {"type":"point-finished","id":"r1","index":0,"cached":false,"source":"run","stats":{...}}
//! server ← ...
//! server ← {"type":"run-complete","id":"r1","ok":2,"failed":0,"cache":{...}}
//! ```
//!
//! Both directions have full encode/decode support (the load generator is
//! a protocol *client*), and every message round-trips through its JSON
//! form — see the tests at the bottom.

use std::fmt;

use swarm_noc::{LinkCounters, LinkStats, TrafficStats};
use swarm_sim::{CommittedTaskAccesses, CycleBreakdown, RunStats};
use swarm_types::Hint;

use crate::json::{self, Value};
use crate::point::RunPoint;

/// Machine-readable class of a protocol error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The message's `"type"` is missing or unknown.
    UnknownType,
    /// A required field is missing.
    MissingField,
    /// A field has the wrong type or an invalid value.
    BadField,
    /// A run point inside a submit request is invalid.
    BadPoint,
}

impl ErrorCode {
    /// The wire spelling of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::UnknownType => "unknown-type",
            ErrorCode::MissingField => "missing-field",
            ErrorCode::BadField => "bad-field",
            ErrorCode::BadPoint => "bad-point",
        }
    }

    fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad-json" => ErrorCode::BadJson,
            "unknown-type" => ErrorCode::UnknownType,
            "missing-field" => ErrorCode::MissingField,
            "bad-field" => ErrorCode::BadField,
            "bad-point" => ErrorCode::BadPoint,
            _ => return None,
        })
    }
}

/// A typed protocol error: what class of problem, and a human-readable
/// message naming the offending field or byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl ProtoError {
    /// Construct an error of the given class.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ProtoError {
        ProtoError { code, message: message.into() }
    }

    /// Shorthand for an [`ErrorCode::BadPoint`] error.
    pub fn bad_point(message: impl Into<String>) -> ProtoError {
        ProtoError::new(ErrorCode::BadPoint, message)
    }

    fn missing(field: &str) -> ProtoError {
        ProtoError::new(ErrorCode::MissingField, format!("missing field \"{field}\""))
    }

    fn bad_field(message: impl Into<String>) -> ProtoError {
        ProtoError::new(ErrorCode::BadField, message)
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ProtoError {}

/// A submit request: run `points` under the request id `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen id echoed in every event for this submission.
    pub id: String,
    /// The run matrix.
    pub points: Vec<RunPoint>,
    /// Stream `progress` events (GVT advance) for points this submission
    /// actually simulates.
    pub progress: bool,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a run matrix.
    Submit(SubmitRequest),
    /// Ask for server-wide statistics.
    Stats,
    /// Close this connection (the server answers with `bye`).
    Shutdown,
}

/// Where a finished point's stats came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// Simulated for this request.
    Fresh,
    /// Served from the in-memory cache (or deduplicated against a
    /// concurrent in-flight run of the same point).
    Memory,
    /// Served from the on-disk cache.
    Disk,
}

impl CacheSource {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheSource::Fresh => "run",
            CacheSource::Memory => "memory",
            CacheSource::Disk => "disk",
        }
    }

    fn from_wire(s: &str) -> Option<CacheSource> {
        Some(match s {
            "run" => CacheSource::Fresh,
            "memory" => CacheSource::Memory,
            "disk" => CacheSource::Disk,
            _ => return None,
        })
    }
}

/// Server-side failure taxonomy: the protocol projection of
/// `swarm_bench::RunError` (PR 8), minus the embedded request (the event's
/// `index` already names the point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The point does not describe a valid simulation.
    InvalidPoint,
    /// The simulation ran but failed with a typed error.
    Sim,
    /// The simulation panicked.
    Panicked,
    /// The point was never run (an earlier failure aborted the batch).
    Skipped,
}

impl FailureKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::InvalidPoint => "invalid-point",
            FailureKind::Sim => "sim",
            FailureKind::Panicked => "panicked",
            FailureKind::Skipped => "skipped",
        }
    }

    fn from_wire(s: &str) -> Option<FailureKind> {
        Some(match s {
            "invalid-point" => FailureKind::InvalidPoint,
            "sim" => FailureKind::Sim,
            "panicked" => FailureKind::Panicked,
            "skipped" => FailureKind::Skipped,
            _ => return None,
        })
    }
}

/// One point's failure: the taxonomy kind plus the harness's message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// Which class of failure.
    pub kind: FailureKind,
    /// Human-readable description (the `RunError` display form).
    pub message: String,
}

/// Cache counters reported in `run-complete` / `run-failed` and `stats`
/// events. `hits`/`misses`/`disk_hits` are scoped to the submission (or,
/// in a `stats` event, to the server's lifetime); `evictions` and
/// `entries` always describe the whole server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// Points served without a new simulation.
    pub hits: u64,
    /// Points that had to be simulated.
    pub misses: u64,
    /// Subset of `hits` served from the on-disk store.
    pub disk_hits: u64,
    /// In-memory entries evicted so far (server-wide).
    pub evictions: u64,
    /// In-memory entries currently resident (server-wide).
    pub entries: u64,
}

/// A server → client message.
///
/// `PointFinished` carries a full inline [`RunStats`] (~320 bytes); events
/// exist one-at-a-time per protocol line, never in bulk collections, so the
/// size skew is irrelevant and boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The submission parsed; `points` runs will follow.
    Accepted {
        /// Echoed request id.
        id: String,
        /// Number of points in the matrix.
        points: u64,
    },
    /// Work on point `index` has begun.
    PointStarted {
        /// Echoed request id.
        id: String,
        /// Zero-based index into the submitted matrix.
        index: u64,
    },
    /// GVT progress of an in-flight simulated point (only with
    /// `"progress":true`, throttled).
    Progress {
        /// Echoed request id.
        id: String,
        /// Zero-based point index.
        index: u64,
        /// Current global virtual time.
        gvt: u64,
    },
    /// Point `index` finished; `stats` is its full result.
    PointFinished {
        /// Echoed request id.
        id: String,
        /// Zero-based point index.
        index: u64,
        /// Where the result came from.
        source: CacheSource,
        /// The simulation statistics.
        stats: RunStats,
    },
    /// Point `index` failed.
    PointFailed {
        /// Echoed request id.
        id: String,
        /// Zero-based point index.
        index: u64,
        /// The typed failure.
        error: PointFailure,
    },
    /// The whole submission is done (`run-complete` when `failed == 0`,
    /// `run-failed` otherwise).
    RunDone {
        /// Echoed request id.
        id: String,
        /// Points that produced stats.
        ok: u64,
        /// Points that failed.
        failed: u64,
        /// Cache accounting for this submission.
        cache: CacheReport,
    },
    /// Answer to a `stats` request.
    ServerStats {
        /// Lifetime cache accounting.
        cache: CacheReport,
        /// Currently connected clients.
        clients: u64,
    },
    /// A typed protocol error (the request line it answers was dropped;
    /// the connection stays open).
    Protocol(ProtoError),
    /// Answer to `shutdown`; the server closes the connection after it.
    Bye,
}

/// Parse one request line.
///
/// # Errors
///
/// Returns a typed [`ProtoError`] (never panics, never disconnects) for
/// malformed JSON, an unknown type, or invalid fields.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let v = json::parse(line).map_err(|e| ProtoError::new(ErrorCode::BadJson, e.to_string()))?;
    let obj = v.as_obj().ok_or_else(|| ProtoError::bad_field("a request must be a JSON object"))?;
    let kind = v
        .get("type")
        .ok_or_else(|| ProtoError::new(ErrorCode::UnknownType, "missing field \"type\""))?
        .as_str()
        .ok_or_else(|| ProtoError::new(ErrorCode::UnknownType, "\"type\" must be a string"))?;
    match kind {
        "submit" => {
            check_fields(obj, &["type", "id", "points", "progress"])?;
            let id = v
                .get("id")
                .ok_or_else(|| ProtoError::missing("id"))?
                .as_str()
                .ok_or_else(|| ProtoError::bad_field("\"id\" must be a string"))?
                .to_string();
            let points_v = v.get("points").ok_or_else(|| ProtoError::missing("points"))?;
            let arr = points_v
                .as_arr()
                .ok_or_else(|| ProtoError::bad_field("\"points\" must be an array"))?;
            if arr.is_empty() {
                return Err(ProtoError::bad_field("\"points\" must not be empty"));
            }
            let points = arr.iter().map(RunPoint::from_json).collect::<Result<Vec<_>, _>>()?;
            let progress = match v.get("progress") {
                None => false,
                Some(p) => p
                    .as_bool()
                    .ok_or_else(|| ProtoError::bad_field("\"progress\" must be a boolean"))?,
            };
            Ok(Request::Submit(SubmitRequest { id, points, progress }))
        }
        "stats" => {
            check_fields(obj, &["type"])?;
            Ok(Request::Stats)
        }
        "shutdown" => {
            check_fields(obj, &["type"])?;
            Ok(Request::Shutdown)
        }
        other => Err(ProtoError::new(
            ErrorCode::UnknownType,
            format!("unknown request type \"{other}\" (expected submit, stats, shutdown)"),
        )),
    }
}

/// Encode a request as its wire line (no trailing newline).
pub fn render_request(req: &Request) -> String {
    let v = match req {
        Request::Submit(s) => {
            let mut fields = vec![
                ("type".to_string(), Value::str("submit")),
                ("id".to_string(), Value::str(&s.id)),
                (
                    "points".to_string(),
                    Value::Arr(s.points.iter().map(RunPoint::to_json).collect()),
                ),
            ];
            if s.progress {
                fields.push(("progress".to_string(), Value::Bool(true)));
            }
            Value::Obj(fields)
        }
        Request::Stats => Value::Obj(vec![("type".to_string(), Value::str("stats"))]),
        Request::Shutdown => Value::Obj(vec![("type".to_string(), Value::str("shutdown"))]),
    };
    v.render()
}

fn cache_report_json(c: &CacheReport) -> Value {
    Value::Obj(vec![
        ("hits".to_string(), Value::UInt(c.hits)),
        ("misses".to_string(), Value::UInt(c.misses)),
        ("disk_hits".to_string(), Value::UInt(c.disk_hits)),
        ("evictions".to_string(), Value::UInt(c.evictions)),
        ("entries".to_string(), Value::UInt(c.entries)),
    ])
}

fn cache_report_from_json(v: &Value) -> Result<CacheReport, ProtoError> {
    Ok(CacheReport {
        hits: req_u64(v, "hits")?,
        misses: req_u64(v, "misses")?,
        disk_hits: req_u64(v, "disk_hits")?,
        evictions: req_u64(v, "evictions")?,
        entries: req_u64(v, "entries")?,
    })
}

/// Encode an event as its wire line (no trailing newline).
pub fn render_event(event: &Event) -> String {
    let v = match event {
        Event::Accepted { id, points } => Value::Obj(vec![
            ("type".to_string(), Value::str("accepted")),
            ("id".to_string(), Value::str(id)),
            ("points".to_string(), Value::UInt(*points)),
        ]),
        Event::PointStarted { id, index } => Value::Obj(vec![
            ("type".to_string(), Value::str("point-started")),
            ("id".to_string(), Value::str(id)),
            ("index".to_string(), Value::UInt(*index)),
        ]),
        Event::Progress { id, index, gvt } => Value::Obj(vec![
            ("type".to_string(), Value::str("progress")),
            ("id".to_string(), Value::str(id)),
            ("index".to_string(), Value::UInt(*index)),
            ("gvt".to_string(), Value::UInt(*gvt)),
        ]),
        Event::PointFinished { id, index, source, stats } => Value::Obj(vec![
            ("type".to_string(), Value::str("point-finished")),
            ("id".to_string(), Value::str(id)),
            ("index".to_string(), Value::UInt(*index)),
            ("cached".to_string(), Value::Bool(*source != CacheSource::Fresh)),
            ("source".to_string(), Value::str(source.as_str())),
            ("stats".to_string(), stats_to_json(stats)),
        ]),
        Event::PointFailed { id, index, error } => Value::Obj(vec![
            ("type".to_string(), Value::str("point-failed")),
            ("id".to_string(), Value::str(id)),
            ("index".to_string(), Value::UInt(*index)),
            (
                "error".to_string(),
                Value::Obj(vec![
                    ("kind".to_string(), Value::str(error.kind.as_str())),
                    ("message".to_string(), Value::str(&error.message)),
                ]),
            ),
        ]),
        Event::RunDone { id, ok, failed, cache } => Value::Obj(vec![
            (
                "type".to_string(),
                Value::str(if *failed == 0 { "run-complete" } else { "run-failed" }),
            ),
            ("id".to_string(), Value::str(id)),
            ("ok".to_string(), Value::UInt(*ok)),
            ("failed".to_string(), Value::UInt(*failed)),
            ("cache".to_string(), cache_report_json(cache)),
        ]),
        Event::ServerStats { cache, clients } => Value::Obj(vec![
            ("type".to_string(), Value::str("stats")),
            ("cache".to_string(), cache_report_json(cache)),
            ("clients".to_string(), Value::UInt(*clients)),
        ]),
        Event::Protocol(err) => Value::Obj(vec![
            ("type".to_string(), Value::str("error")),
            ("code".to_string(), Value::str(err.code.as_str())),
            ("message".to_string(), Value::str(&err.message)),
        ]),
        Event::Bye => Value::Obj(vec![("type".to_string(), Value::str("bye"))]),
    };
    v.render()
}

/// Parse one event line (the client half of the protocol; the load
/// generator and the round-trip tests use this).
///
/// # Errors
///
/// Returns a typed [`ProtoError`] for malformed JSON, an unknown type, or
/// invalid fields.
pub fn parse_event(line: &str) -> Result<Event, ProtoError> {
    let v = json::parse(line).map_err(|e| ProtoError::new(ErrorCode::BadJson, e.to_string()))?;
    let kind = v
        .get("type")
        .ok_or_else(|| ProtoError::new(ErrorCode::UnknownType, "missing field \"type\""))?
        .as_str()
        .ok_or_else(|| ProtoError::new(ErrorCode::UnknownType, "\"type\" must be a string"))?;
    match kind {
        "accepted" => {
            Ok(Event::Accepted { id: req_str(&v, "id")?, points: req_u64(&v, "points")? })
        }
        "point-started" => {
            Ok(Event::PointStarted { id: req_str(&v, "id")?, index: req_u64(&v, "index")? })
        }
        "progress" => Ok(Event::Progress {
            id: req_str(&v, "id")?,
            index: req_u64(&v, "index")?,
            gvt: req_u64(&v, "gvt")?,
        }),
        "point-finished" => {
            let source_str = req_str(&v, "source")?;
            let source = CacheSource::from_wire(&source_str)
                .ok_or_else(|| ProtoError::bad_field(format!("unknown source \"{source_str}\"")))?;
            let cached = v
                .get("cached")
                .and_then(Value::as_bool)
                .ok_or_else(|| ProtoError::missing("cached"))?;
            if cached != (source != CacheSource::Fresh) {
                return Err(ProtoError::bad_field("\"cached\" contradicts \"source\""));
            }
            let stats =
                stats_from_json(v.get("stats").ok_or_else(|| ProtoError::missing("stats"))?)?;
            Ok(Event::PointFinished {
                id: req_str(&v, "id")?,
                index: req_u64(&v, "index")?,
                source,
                stats,
            })
        }
        "point-failed" => {
            let err_v = v.get("error").ok_or_else(|| ProtoError::missing("error"))?;
            let kind_str = req_str(err_v, "kind")?;
            let kind = FailureKind::from_wire(&kind_str).ok_or_else(|| {
                ProtoError::bad_field(format!("unknown failure kind \"{kind_str}\""))
            })?;
            Ok(Event::PointFailed {
                id: req_str(&v, "id")?,
                index: req_u64(&v, "index")?,
                error: PointFailure { kind, message: req_str(err_v, "message")? },
            })
        }
        "run-complete" | "run-failed" => {
            let failed = req_u64(&v, "failed")?;
            if (kind == "run-complete") != (failed == 0) {
                return Err(ProtoError::bad_field("\"type\" contradicts \"failed\""));
            }
            Ok(Event::RunDone {
                id: req_str(&v, "id")?,
                ok: req_u64(&v, "ok")?,
                failed,
                cache: cache_report_from_json(
                    v.get("cache").ok_or_else(|| ProtoError::missing("cache"))?,
                )?,
            })
        }
        "stats" => Ok(Event::ServerStats {
            cache: cache_report_from_json(
                v.get("cache").ok_or_else(|| ProtoError::missing("cache"))?,
            )?,
            clients: req_u64(&v, "clients")?,
        }),
        "error" => {
            let code_str = req_str(&v, "code")?;
            let code = ErrorCode::from_wire(&code_str).ok_or_else(|| {
                ProtoError::bad_field(format!("unknown error code \"{code_str}\""))
            })?;
            Ok(Event::Protocol(ProtoError { code, message: req_str(&v, "message")? }))
        }
        "bye" => Ok(Event::Bye),
        other => {
            Err(ProtoError::new(ErrorCode::UnknownType, format!("unknown event type \"{other}\"")))
        }
    }
}

fn check_fields(obj: &[(String, Value)], allowed: &[&str]) -> Result<(), ProtoError> {
    for (key, _) in obj {
        if !allowed.contains(&key.as_str()) {
            return Err(ProtoError::bad_field(format!("unknown field \"{key}\"")));
        }
    }
    Ok(())
}

fn req_str(v: &Value, field: &str) -> Result<String, ProtoError> {
    v.get(field)
        .ok_or_else(|| ProtoError::missing(field))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ProtoError::bad_field(format!("\"{field}\" must be a string")))
}

fn req_u64(v: &Value, field: &str) -> Result<u64, ProtoError> {
    v.get(field)
        .ok_or_else(|| ProtoError::missing(field))?
        .as_u64()
        .ok_or_else(|| ProtoError::bad_field(format!("\"{field}\" must be a non-negative integer")))
}

/// Encode [`RunStats`] as a JSON object. Every field is covered, so cached
/// results round-trip byte-identically through the on-disk store and the
/// wire.
pub fn stats_to_json(stats: &RunStats) -> Value {
    let b = &stats.breakdown;
    let t = &stats.traffic;
    Value::Obj(vec![
        ("scheduler".to_string(), Value::str(&stats.scheduler)),
        ("app".to_string(), Value::str(&stats.app)),
        ("cores".to_string(), Value::UInt(stats.cores as u64)),
        ("runtime_cycles".to_string(), Value::UInt(stats.runtime_cycles)),
        (
            "breakdown".to_string(),
            Value::Obj(vec![
                ("committed".to_string(), Value::UInt(b.committed)),
                ("aborted".to_string(), Value::UInt(b.aborted)),
                ("spill".to_string(), Value::UInt(b.spill)),
                ("stall".to_string(), Value::UInt(b.stall)),
                ("empty".to_string(), Value::UInt(b.empty)),
            ]),
        ),
        (
            "traffic".to_string(),
            Value::Obj(vec![
                ("mem_flit_hops".to_string(), Value::UInt(t.mem_flit_hops)),
                ("abort_flit_hops".to_string(), Value::UInt(t.abort_flit_hops)),
                ("task_flit_hops".to_string(), Value::UInt(t.task_flit_hops)),
                ("gvt_flit_hops".to_string(), Value::UInt(t.gvt_flit_hops)),
            ]),
        ),
        ("tasks_committed".to_string(), Value::UInt(stats.tasks_committed)),
        ("tasks_aborted".to_string(), Value::UInt(stats.tasks_aborted)),
        ("tasks_spilled".to_string(), Value::UInt(stats.tasks_spilled)),
        ("gvt_updates".to_string(), Value::UInt(stats.gvt_updates)),
        ("lb_reconfigs".to_string(), Value::UInt(stats.lb_reconfigs)),
        ("noc_queue_cycles".to_string(), Value::UInt(stats.noc_queue_cycles)),
        (
            "committed_cycles_per_tile".to_string(),
            Value::Arr(stats.committed_cycles_per_tile.iter().map(|&c| Value::UInt(c)).collect()),
        ),
        (
            "committed_accesses".to_string(),
            Value::Arr(stats.committed_accesses.iter().map(accesses_to_json).collect()),
        ),
        (
            "link_stats".to_string(),
            match &stats.link_stats {
                None => Value::Null,
                Some(ls) => link_stats_to_json(ls),
            },
        ),
    ])
}

fn hint_to_json(hint: &Hint) -> Value {
    match hint {
        Hint::Value(v) => Value::Obj(vec![
            ("kind".to_string(), Value::str("value")),
            ("value".to_string(), Value::UInt(*v)),
        ]),
        Hint::None => Value::Obj(vec![("kind".to_string(), Value::str("none"))]),
        Hint::Same => Value::Obj(vec![("kind".to_string(), Value::str("same"))]),
    }
}

fn hint_from_json(v: &Value) -> Result<Hint, ProtoError> {
    let kind = req_str(v, "kind")?;
    match kind.as_str() {
        "value" => Ok(Hint::Value(req_u64(v, "value")?)),
        "none" => Ok(Hint::None),
        "same" => Ok(Hint::Same),
        other => Err(ProtoError::bad_field(format!("unknown hint kind \"{other}\""))),
    }
}

fn accesses_to_json(a: &CommittedTaskAccesses) -> Value {
    Value::Obj(vec![
        ("hint".to_string(), hint_to_json(&a.hint)),
        ("num_args".to_string(), Value::UInt(a.num_args as u64)),
        (
            "accesses".to_string(),
            Value::Arr(
                a.accesses
                    .iter()
                    .map(|&(addr, is_write)| {
                        Value::Arr(vec![Value::UInt(addr), Value::Bool(is_write)])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn accesses_from_json(v: &Value) -> Result<CommittedTaskAccesses, ProtoError> {
    let hint = hint_from_json(v.get("hint").ok_or_else(|| ProtoError::missing("hint"))?)?;
    let num_args = req_u64(v, "num_args")? as usize;
    let accesses = v
        .get("accesses")
        .and_then(Value::as_arr)
        .ok_or_else(|| ProtoError::missing("accesses"))?
        .iter()
        .map(|pair| {
            let items = pair.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                ProtoError::bad_field("each access must be an [address, is_write] pair")
            })?;
            let addr = items[0]
                .as_u64()
                .ok_or_else(|| ProtoError::bad_field("access address must be a u64"))?;
            let is_write = items[1]
                .as_bool()
                .ok_or_else(|| ProtoError::bad_field("access is_write must be a boolean"))?;
            Ok((addr, is_write))
        })
        .collect::<Result<Vec<_>, ProtoError>>()?;
    Ok(CommittedTaskAccesses { hint, num_args, accesses })
}

fn link_stats_to_json(ls: &LinkStats) -> Value {
    Value::Obj(vec![
        (
            "links".to_string(),
            Value::Arr(
                ls.links
                    .iter()
                    .map(|l| {
                        Value::Obj(vec![
                            ("messages".to_string(), Value::UInt(l.messages)),
                            ("flits".to_string(), Value::UInt(l.flits)),
                            ("queue_cycles".to_string(), Value::UInt(l.queue_cycles)),
                            ("occupancy_sum".to_string(), Value::UInt(l.occupancy_sum)),
                            ("max_occupancy".to_string(), Value::UInt(l.max_occupancy)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "class_queue_cycles".to_string(),
            Value::Arr(ls.class_queue_cycles.iter().map(|&c| Value::UInt(c)).collect()),
        ),
    ])
}

fn link_stats_from_json(v: &Value) -> Result<LinkStats, ProtoError> {
    let links = v
        .get("links")
        .and_then(Value::as_arr)
        .ok_or_else(|| ProtoError::missing("links"))?
        .iter()
        .map(|l| {
            Ok(LinkCounters {
                messages: req_u64(l, "messages")?,
                flits: req_u64(l, "flits")?,
                queue_cycles: req_u64(l, "queue_cycles")?,
                occupancy_sum: req_u64(l, "occupancy_sum")?,
                max_occupancy: req_u64(l, "max_occupancy")?,
            })
        })
        .collect::<Result<Vec<_>, ProtoError>>()?;
    let cqc = v
        .get("class_queue_cycles")
        .and_then(Value::as_arr)
        .ok_or_else(|| ProtoError::missing("class_queue_cycles"))?;
    if cqc.len() != 4 {
        return Err(ProtoError::bad_field("class_queue_cycles must have 4 entries"));
    }
    let mut class_queue_cycles = [0u64; 4];
    for (slot, item) in class_queue_cycles.iter_mut().zip(cqc) {
        *slot = item
            .as_u64()
            .ok_or_else(|| ProtoError::bad_field("class_queue_cycles entries must be u64"))?;
    }
    Ok(LinkStats { links, class_queue_cycles })
}

/// Decode [`RunStats`] from its JSON object form. Strict: every field is
/// required (matching [`stats_to_json`]), so a corrupt or truncated cache
/// file surfaces as a typed error, not a half-default result.
///
/// # Errors
///
/// Returns a typed [`ProtoError`] naming the first missing or mistyped
/// field.
pub fn stats_from_json(v: &Value) -> Result<RunStats, ProtoError> {
    let b = v.get("breakdown").ok_or_else(|| ProtoError::missing("breakdown"))?;
    let t = v.get("traffic").ok_or_else(|| ProtoError::missing("traffic"))?;
    Ok(RunStats {
        scheduler: req_str(v, "scheduler")?,
        app: req_str(v, "app")?,
        cores: req_u64(v, "cores")? as usize,
        runtime_cycles: req_u64(v, "runtime_cycles")?,
        breakdown: CycleBreakdown {
            committed: req_u64(b, "committed")?,
            aborted: req_u64(b, "aborted")?,
            spill: req_u64(b, "spill")?,
            stall: req_u64(b, "stall")?,
            empty: req_u64(b, "empty")?,
        },
        traffic: TrafficStats {
            mem_flit_hops: req_u64(t, "mem_flit_hops")?,
            abort_flit_hops: req_u64(t, "abort_flit_hops")?,
            task_flit_hops: req_u64(t, "task_flit_hops")?,
            gvt_flit_hops: req_u64(t, "gvt_flit_hops")?,
        },
        tasks_committed: req_u64(v, "tasks_committed")?,
        tasks_aborted: req_u64(v, "tasks_aborted")?,
        tasks_spilled: req_u64(v, "tasks_spilled")?,
        gvt_updates: req_u64(v, "gvt_updates")?,
        lb_reconfigs: req_u64(v, "lb_reconfigs")?,
        noc_queue_cycles: req_u64(v, "noc_queue_cycles")?,
        committed_cycles_per_tile: v
            .get("committed_cycles_per_tile")
            .and_then(Value::as_arr)
            .ok_or_else(|| ProtoError::missing("committed_cycles_per_tile"))?
            .iter()
            .map(|c| {
                c.as_u64().ok_or_else(|| {
                    ProtoError::bad_field("committed_cycles_per_tile entries must be u64")
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
        committed_accesses: v
            .get("committed_accesses")
            .and_then(Value::as_arr)
            .ok_or_else(|| ProtoError::missing("committed_accesses"))?
            .iter()
            .map(accesses_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        link_stats: match v.get("link_stats") {
            None => return Err(ProtoError::missing("link_stats")),
            Some(Value::Null) => None,
            Some(ls) => Some(link_stats_from_json(ls)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_apps::{AppSpec, BenchmarkId, InputScale};

    fn sample_stats() -> RunStats {
        RunStats {
            scheduler: "Hints".into(),
            app: "sssp".into(),
            cores: 4,
            runtime_cycles: 123_456,
            breakdown: CycleBreakdown { committed: 100, aborted: 20, spill: 3, stall: 4, empty: 5 },
            traffic: TrafficStats {
                mem_flit_hops: 11,
                abort_flit_hops: 22,
                task_flit_hops: 33,
                gvt_flit_hops: 44,
            },
            tasks_committed: 1000,
            tasks_aborted: 50,
            tasks_spilled: 7,
            gvt_updates: 99,
            lb_reconfigs: 2,
            noc_queue_cycles: 12,
            committed_cycles_per_tile: vec![10, 20, 30, 40],
            committed_accesses: vec![CommittedTaskAccesses {
                hint: Hint::Value(7),
                num_args: 2,
                accesses: vec![(0x1000, false), (0x1008, true)],
            }],
            link_stats: Some(LinkStats {
                links: vec![LinkCounters {
                    messages: 5,
                    flits: 6,
                    queue_cycles: 7,
                    occupancy_sum: 8,
                    max_occupancy: 9,
                }],
                class_queue_cycles: [1, 2, 3, 4],
            }),
        }
    }

    fn sample_point() -> RunPoint {
        RunPoint::new(AppSpec::coarse(BenchmarkId::Sssp), Scheduler::Hints, 4, InputScale::Tiny)
    }

    #[test]
    fn stats_round_trip_including_every_field() {
        let stats = sample_stats();
        let back = stats_from_json(&stats_to_json(&stats)).unwrap();
        assert_eq!(back, stats);
        // Byte-identical through a second encode: the wire form is stable.
        assert_eq!(stats_to_json(&back).render(), stats_to_json(&stats).render());
        // And the default (no link stats, empty vectors) round-trips too.
        let empty = RunStats::default();
        assert_eq!(stats_from_json(&stats_to_json(&empty)).unwrap(), empty);
    }

    #[test]
    fn every_request_round_trips() {
        let requests = vec![
            Request::Submit(SubmitRequest {
                id: "r1".into(),
                points: vec![sample_point(), RunPoint { cores: 8, ..sample_point() }],
                progress: false,
            }),
            Request::Submit(SubmitRequest {
                id: "with options".into(),
                points: vec![RunPoint {
                    fault: Some("duplicate@100".parse().unwrap()),
                    noc: swarm_types::NocModel::Contention,
                    ..sample_point()
                }],
                progress: true,
            }),
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let line = render_request(&req);
            let back = parse_request(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, req, "{line}");
        }
    }

    #[test]
    fn every_event_round_trips() {
        let cache = CacheReport { hits: 1, misses: 2, disk_hits: 1, evictions: 0, entries: 3 };
        let events = vec![
            Event::Accepted { id: "r1".into(), points: 2 },
            Event::PointStarted { id: "r1".into(), index: 0 },
            Event::Progress { id: "r1".into(), index: 1, gvt: 5000 },
            Event::PointFinished {
                id: "r1".into(),
                index: 0,
                source: CacheSource::Fresh,
                stats: sample_stats(),
            },
            Event::PointFinished {
                id: "r1".into(),
                index: 1,
                source: CacheSource::Disk,
                stats: RunStats::default(),
            },
            Event::PointFailed {
                id: "r1".into(),
                index: 1,
                error: PointFailure {
                    kind: FailureKind::Sim,
                    message: "sssp under Hints at 4 cores failed: deadlock".into(),
                },
            },
            Event::RunDone { id: "r1".into(), ok: 2, failed: 0, cache },
            Event::RunDone { id: "r1".into(), ok: 1, failed: 1, cache },
            Event::ServerStats { cache, clients: 2 },
            Event::Protocol(ProtoError::new(ErrorCode::BadJson, "expected ':' at byte 7")),
            Event::Bye,
        ];
        for event in events {
            let line = render_event(&event);
            let back = parse_event(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "{line}");
        }
    }

    #[test]
    fn run_done_type_tracks_failed_count() {
        let cache = CacheReport::default();
        let done = Event::RunDone { id: "x".into(), ok: 2, failed: 0, cache };
        assert!(render_event(&done).contains("\"run-complete\""));
        let failed = Event::RunDone { id: "x".into(), ok: 1, failed: 1, cache };
        assert!(render_event(&failed).contains("\"run-failed\""));
    }

    #[test]
    fn malformed_requests_are_typed_not_fatal() {
        for (line, code) in [
            ("not json at all", ErrorCode::BadJson),
            ("{\"type\":\"launch\"}", ErrorCode::UnknownType),
            ("{\"id\":\"x\"}", ErrorCode::UnknownType),
            ("{\"type\":\"submit\",\"points\":[]}", ErrorCode::MissingField),
            ("{\"type\":\"submit\",\"id\":\"x\",\"points\":[]}", ErrorCode::BadField),
            ("{\"type\":\"submit\",\"id\":\"x\",\"points\":[{}]}", ErrorCode::BadPoint),
            ("{\"type\":\"submit\",\"id\":\"x\",\"points\":[1]}", ErrorCode::BadPoint),
            ("{\"type\":\"stats\",\"extra\":1}", ErrorCode::BadField),
        ] {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code, code, "{line}: {err}");
        }
    }

    #[test]
    fn truncated_stats_are_rejected() {
        let mut v = stats_to_json(&sample_stats());
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "noc_queue_cycles");
        }
        let err = stats_from_json(&v).unwrap_err();
        assert_eq!(err.code, ErrorCode::MissingField);
        assert!(err.message.contains("noc_queue_cycles"), "{err}");
    }
}
