//! The execution seam between the server and the simulation harness.
//!
//! `swarm_serve` deliberately does not depend on `swarm_bench` (the
//! dependency points the other way so the registry can host the `serve`
//! subcommand). The server schedules points through this trait;
//! `swarm_bench::figures::serve` implements it on top of the work-sharing
//! `Pool`, and the tests implement it with deterministic fakes.

use swarm_sim::RunStats;

use crate::point::RunPoint;
use crate::proto::PointFailure;

/// What running one point produced.
pub type PointOutcome = Result<RunStats, PointFailure>;

/// Something that can simulate run points.
pub trait PointRunner: Send + Sync {
    /// Run a batch of points, returning one outcome per point in order.
    /// Implementations may parallelise internally.
    fn run_batch(&self, points: &[RunPoint]) -> Vec<PointOutcome>;

    /// Run a single point, invoking `on_gvt` as its global virtual time
    /// advances (for `"progress":true` submissions). The default ignores
    /// progress and delegates to [`run_batch`](PointRunner::run_batch).
    fn run_observed(&self, point: &RunPoint, on_gvt: &mut dyn FnMut(u64)) -> PointOutcome {
        let _ = on_gvt;
        self.run_batch(std::slice::from_ref(point))
            .pop()
            .expect("run_batch returns one outcome per point")
    }
}
