//! The unit of work the service schedules and caches: one run point.
//!
//! [`RunPoint`] mirrors `swarm_bench::RunRequest` field for field — the
//! definition lives here (below the bench crate in the dependency graph) so
//! the server, cache, and protocol can speak it without depending on the
//! harness; `swarm_bench` converts it into a `RunRequest` inside its
//! [`PointRunner`](crate::exec::PointRunner) implementation.
//!
//! A point's [`Canonical`] form covers every input that determines the
//! simulation's output — the app and granularity, scheduler, core count,
//! scale, seed, NoC model, fault plan, *and* the full derived
//! [`SystemConfig`] — so the [`CanonKey`](swarm_types::CanonKey) is a
//! sound content address for
//! cached [`RunStats`](swarm_sim::RunStats).

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId, InputScale};
use swarm_sim::FaultEvent;
use swarm_types::{CanonBuf, Canonical, NocModel, SystemConfig};

use crate::json::Value;
use crate::proto::ProtoError;

/// Everything that determines one simulation's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunPoint {
    /// Which application (and granularity).
    pub spec: AppSpec,
    /// Which scheduler.
    pub scheduler: Scheduler,
    /// Number of simulated cores.
    pub cores: u32,
    /// Input scale.
    pub scale: InputScale,
    /// Workload seed.
    pub seed: u64,
    /// Optional deterministic fault to inject (see [`swarm_sim::fault`]).
    pub fault: Option<FaultEvent>,
    /// Which network model to simulate under.
    pub noc: NocModel,
}

/// The default workload seed, matching `swarm_bench::RunRequest::new`.
pub const DEFAULT_SEED: u64 = 0xF1605;

impl RunPoint {
    /// A point with the default seed, no fault, and the analytic NoC —
    /// the same defaults as `swarm_bench::RunRequest::new`.
    pub fn new(spec: AppSpec, scheduler: Scheduler, cores: u32, scale: InputScale) -> RunPoint {
        RunPoint {
            spec,
            scheduler,
            cores,
            scale,
            seed: DEFAULT_SEED,
            fault: None,
            noc: NocModel::Analytic,
        }
    }

    /// The machine configuration this point simulates under, mirroring how
    /// the harness builds it: `SystemConfig::with_cores(cores)` with the
    /// NoC model applied.
    pub fn system_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::with_cores(self.cores);
        cfg.noc.model = self.noc;
        cfg
    }

    /// Encode this point as a protocol JSON object.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("app".to_string(), Value::str(self.spec.name())),
            ("scheduler".to_string(), Value::str(self.scheduler.name().to_ascii_lowercase())),
            ("cores".to_string(), Value::UInt(self.cores as u64)),
            ("scale".to_string(), Value::str(scale_name(self.scale))),
            ("seed".to_string(), Value::UInt(self.seed)),
            ("noc".to_string(), Value::str(noc_name(self.noc))),
        ];
        if let Some(fault) = &self.fault {
            fields.push(("fault".to_string(), Value::str(fault.to_string())));
        }
        Value::Obj(fields)
    }

    /// Decode a point from a protocol JSON object. `seed`, `noc` and
    /// `fault` are optional (defaulting to [`DEFAULT_SEED`], `analytic`,
    /// and none); everything else is required, and unknown fields are
    /// rejected.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtoError`] naming the offending field.
    pub fn from_json(v: &Value) -> Result<RunPoint, ProtoError> {
        let obj = v.as_obj().ok_or_else(|| ProtoError::bad_point("a point must be an object"))?;
        for (key, _) in obj {
            if !["app", "scheduler", "cores", "scale", "seed", "noc", "fault"]
                .contains(&key.as_str())
            {
                return Err(ProtoError::bad_point(format!("unknown point field \"{key}\"")));
            }
        }
        let app = point_str(v, "app")?;
        let (bench_name, fine) = match app.strip_suffix("-fg") {
            Some(base) => (base, true),
            None => (app, false),
        };
        let benchmark: BenchmarkId =
            bench_name.parse().map_err(|e: String| ProtoError::bad_point(format!("app: {e}")))?;
        if fine && !BenchmarkId::WITH_FINE_GRAIN.contains(&benchmark) {
            return Err(ProtoError::bad_point(format!(
                "app: {bench_name} has no fine-grain version"
            )));
        }
        let spec = if fine { AppSpec::fine(benchmark) } else { AppSpec::coarse(benchmark) };
        let scheduler: Scheduler = point_str(v, "scheduler")?
            .parse()
            .map_err(|e: String| ProtoError::bad_point(format!("scheduler: {e}")))?;
        let cores = v
            .get("cores")
            .ok_or_else(|| ProtoError::bad_point("missing point field \"cores\""))?
            .as_u64()
            .filter(|c| (1..=4096).contains(c))
            .ok_or_else(|| ProtoError::bad_point("cores must be an integer in 1..=4096"))?
            as u32;
        let scale = parse_scale(point_str(v, "scale")?)?;
        let seed = match v.get("seed") {
            None => DEFAULT_SEED,
            Some(s) => s.as_u64().ok_or_else(|| ProtoError::bad_point("seed must be a u64"))?,
        };
        let noc = match v.get("noc") {
            None => NocModel::Analytic,
            Some(n) => {
                parse_noc(n.as_str().ok_or_else(|| ProtoError::bad_point("noc must be a string"))?)?
            }
        };
        let fault = match v.get("fault") {
            None | Some(Value::Null) => None,
            Some(f) => {
                let text =
                    f.as_str().ok_or_else(|| ProtoError::bad_point("fault must be a string"))?;
                Some(
                    text.parse::<FaultEvent>()
                        .map_err(|e| ProtoError::bad_point(format!("fault: {e}")))?,
                )
            }
        };
        Ok(RunPoint { spec, scheduler, cores, scale, seed, fault, noc })
    }
}

fn point_str<'a>(v: &'a Value, field: &str) -> Result<&'a str, ProtoError> {
    v.get(field)
        .ok_or_else(|| ProtoError::bad_point(format!("missing point field \"{field}\"")))?
        .as_str()
        .ok_or_else(|| ProtoError::bad_point(format!("{field} must be a string")))
}

/// Lowercase name of an input scale (the protocol and CLI spelling).
pub fn scale_name(scale: InputScale) -> &'static str {
    match scale {
        InputScale::Tiny => "tiny",
        InputScale::Small => "small",
        InputScale::Medium => "medium",
    }
}

/// Parse an input scale name.
///
/// # Errors
///
/// Returns a typed [`ProtoError`] for anything but `tiny|small|medium`.
pub fn parse_scale(s: &str) -> Result<InputScale, ProtoError> {
    match s {
        "tiny" => Ok(InputScale::Tiny),
        "small" => Ok(InputScale::Small),
        "medium" => Ok(InputScale::Medium),
        other => Err(ProtoError::bad_point(format!(
            "unknown scale '{other}' (expected tiny, small, medium)"
        ))),
    }
}

/// Lowercase name of a NoC model.
pub fn noc_name(noc: NocModel) -> &'static str {
    match noc {
        NocModel::Analytic => "analytic",
        NocModel::Contention => "contention",
    }
}

fn parse_noc(s: &str) -> Result<NocModel, ProtoError> {
    match s {
        "analytic" => Ok(NocModel::Analytic),
        "contention" => Ok(NocModel::Contention),
        other => Err(ProtoError::bad_point(format!(
            "unknown noc model '{other}' (expected analytic, contention)"
        ))),
    }
}

/// The canonical form covers every simulation input: the app identity and
/// granularity, scheduler, core count, scale, seed, NoC model, the fault
/// plan (via its stable `Display`/`FromStr` text form), and the full
/// derived [`SystemConfig`].
impl Canonical for RunPoint {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_str(self.spec.benchmark.name());
        buf.put_bool(self.spec.fine_grain);
        buf.put_str(self.scheduler.name());
        buf.put_u32(self.cores);
        buf.put_str(scale_name(self.scale));
        buf.put_u64(self.seed);
        self.fault.map(|f| f.to_string()).canonicalize(buf);
        self.system_config().canonicalize(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_types::key_of;

    fn base() -> RunPoint {
        RunPoint::new(AppSpec::coarse(BenchmarkId::Sssp), Scheduler::Hints, 4, InputScale::Tiny)
    }

    #[test]
    fn json_round_trips_with_defaults_and_options() {
        let mut p = base();
        assert_eq!(RunPoint::from_json(&p.to_json()).unwrap(), p);
        p.spec = AppSpec::fine(BenchmarkId::Sssp);
        p.noc = NocModel::Contention;
        p.seed = 12345;
        p.fault = Some("duplicate@100".parse().unwrap());
        assert_eq!(RunPoint::from_json(&p.to_json()).unwrap(), p);
    }

    #[test]
    fn minimal_point_gets_the_harness_defaults() {
        let v = crate::json::parse(
            "{\"app\":\"sssp\",\"scheduler\":\"hints\",\"cores\":4,\"scale\":\"tiny\"}",
        )
        .unwrap();
        assert_eq!(RunPoint::from_json(&v).unwrap(), base());
    }

    #[test]
    fn malformed_points_are_typed_errors() {
        for (text, needle) in [
            ("{\"scheduler\":\"hints\",\"cores\":4,\"scale\":\"tiny\"}", "app"),
            ("{\"app\":\"zorp\",\"scheduler\":\"hints\",\"cores\":4,\"scale\":\"tiny\"}", "zorp"),
            ("{\"app\":\"des-fg\",\"scheduler\":\"hints\",\"cores\":4,\"scale\":\"tiny\"}", "fine-grain"),
            ("{\"app\":\"sssp\",\"scheduler\":\"zmap\",\"cores\":4,\"scale\":\"tiny\"}", "zmap"),
            ("{\"app\":\"sssp\",\"scheduler\":\"hints\",\"cores\":0,\"scale\":\"tiny\"}", "cores"),
            ("{\"app\":\"sssp\",\"scheduler\":\"hints\",\"cores\":4,\"scale\":\"huge\"}", "huge"),
            (
                "{\"app\":\"sssp\",\"scheduler\":\"hints\",\"cores\":4,\"scale\":\"tiny\",\"noc\":\"magic\"}",
                "magic",
            ),
            (
                "{\"app\":\"sssp\",\"scheduler\":\"hints\",\"cores\":4,\"scale\":\"tiny\",\"bogus\":1}",
                "bogus",
            ),
            (
                "{\"app\":\"sssp\",\"scheduler\":\"hints\",\"cores\":4,\"scale\":\"tiny\",\"fault\":\"zap\"}",
                "fault",
            ),
        ] {
            let v = crate::json::parse(text).unwrap();
            let err = RunPoint::from_json(&v).expect_err(text);
            assert!(err.message.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn every_point_field_moves_the_canon_key() {
        let b = base();
        let edits: Vec<RunPoint> = vec![
            RunPoint { spec: AppSpec::coarse(BenchmarkId::Bfs), ..b },
            RunPoint { spec: AppSpec::fine(BenchmarkId::Sssp), ..b },
            RunPoint { scheduler: Scheduler::Random, ..b },
            RunPoint { cores: 8, ..b },
            RunPoint { scale: InputScale::Small, ..b },
            RunPoint { seed: b.seed + 1, ..b },
            RunPoint { fault: Some("duplicate@7".parse().unwrap()), ..b },
            RunPoint { noc: NocModel::Contention, ..b },
        ];
        let mut keys = vec![key_of(&b)];
        for (i, e) in edits.iter().enumerate() {
            let key = key_of(e);
            assert!(!keys.contains(&key), "edit #{i} collided");
            keys.push(key);
        }
    }

    #[test]
    fn system_config_mirrors_the_harness_construction() {
        let p = RunPoint { noc: NocModel::Contention, ..base() };
        let mut expect = SystemConfig::with_cores(4);
        expect.noc.model = NocModel::Contention;
        assert_eq!(p.system_config(), expect);
    }
}
