//! Spatial hints: data-centric scheduling for speculative parallel programs.
//!
//! This crate is the reproduction of the *primary contribution* of
//! "Data-Centric Execution of Speculative Parallel Programs" (MICRO 2016):
//!
//! * **Hint-based spatial task mapping** ([`HintMapper`]): a task created
//!   with hint *h* is sent to tile `hash(h) mod tiles`, so tasks likely to
//!   access the same data run on the same tile (Section III).
//! * **Same-hint serialization**: tiles avoid co-scheduling two tasks with
//!   the same 16-bit hashed hint (exposed through
//!   [`swarm_sim::TaskMapper::serialize_same_hint`]).
//! * **Data-centric load balancing** ([`LbHintMapper`]): hints hash into
//!   buckets, buckets map to tiles through a reconfigurable tile map, and a
//!   periodic rebalancer redistributes buckets using *committed cycles* as
//!   the load signal (Section VI). The inferior idle-task-count signal the
//!   paper evaluates against is [`IdleLbMapper`].
//! * **Baselines**: [`RandomMapper`] (Swarm's default) and [`StealingMapper`]
//!   (an idealized work-stealing scheduler), used throughout the evaluation.
//! * **Access classification** ([`profile`]): the architecture-independent
//!   analysis of Fig. 3 / Fig. 6 that explains *when* hints are effective.
//!
//! # Example
//!
//! ```
//! use spatial_hints::Scheduler;
//! use swarm_types::SystemConfig;
//!
//! let cfg = SystemConfig::small();
//! let mapper = Scheduler::Hints.build(&cfg);
//! assert!(mapper.serialize_same_hint());
//! ```

pub mod lb;
pub mod profile;
pub mod schedulers;

pub use lb::{IdleLbMapper, LbHintMapper, TileMap};
pub use profile::{classify_accesses, AccessClass, AccessClassification, ClassifierConfig};
pub use schedulers::{HintMapper, RandomMapper, StealingMapper};

use swarm_sim::TaskMapper;
use swarm_types::SystemConfig;

/// The schedulers compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheduler {
    /// Swarm's default: new tasks go to a uniformly random tile.
    Random,
    /// Idealized work stealing: enqueue locally, steal the earliest task
    /// from the most-loaded tile when out of work (zero overhead).
    Stealing,
    /// Spatial hints: hash the hint to a tile and serialize same-hint tasks.
    Hints,
    /// Spatial hints plus the committed-cycles load balancer (Section VI).
    LbHints,
    /// Ablation: hint-based load balancing driven by idle-task counts
    /// instead of committed cycles (Section VI-A).
    IdleLb,
}

impl Scheduler {
    /// All schedulers, in the order the paper's figures present them.
    pub const ALL: [Scheduler; 4] =
        [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints];

    /// Short label used in tables ("R", "S", "H", "L").
    pub fn short_label(self) -> &'static str {
        match self {
            Scheduler::Random => "R",
            Scheduler::Stealing => "S",
            Scheduler::Hints => "H",
            Scheduler::LbHints => "L",
            Scheduler::IdleLb => "I",
        }
    }

    /// Full name, matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Random => "Random",
            Scheduler::Stealing => "Stealing",
            Scheduler::Hints => "Hints",
            Scheduler::LbHints => "LBHints",
            Scheduler::IdleLb => "IdleLB",
        }
    }

    /// Instantiate the corresponding task mapper for `cfg`.
    pub fn build(self, cfg: &SystemConfig) -> Box<dyn TaskMapper> {
        match self {
            Scheduler::Random => Box::new(RandomMapper::new(cfg.seed)),
            Scheduler::Stealing => Box::new(StealingMapper::new(cfg.seed)),
            Scheduler::Hints => Box::new(HintMapper::new(cfg.seed)),
            Scheduler::LbHints => Box::new(LbHintMapper::new(cfg)),
            Scheduler::IdleLb => Box::new(IdleLbMapper::new(cfg)),
        }
    }
}

/// Schedulers plug straight into [`swarm_sim::SimBuilder::scheduler`]:
/// the mapper is instantiated once the builder has settled the machine
/// configuration, so seeded mappers see the final seed and tile count.
impl swarm_sim::MapperFactory for Scheduler {
    fn build_mapper(&self, cfg: &SystemConfig) -> Box<dyn TaskMapper> {
        self.build(cfg)
    }
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Scheduler {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "random" | "r" => Ok(Scheduler::Random),
            "stealing" | "steal" | "s" => Ok(Scheduler::Stealing),
            "hints" | "h" => Ok(Scheduler::Hints),
            "lbhints" | "lb" | "l" => Ok(Scheduler::LbHints),
            "idlelb" | "i" => Ok(Scheduler::IdleLb),
            other => Err(format!("unknown scheduler '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_names_round_trip() {
        for s in [
            Scheduler::Random,
            Scheduler::Stealing,
            Scheduler::Hints,
            Scheduler::LbHints,
            Scheduler::IdleLb,
        ] {
            let parsed: Scheduler = s.name().parse().unwrap();
            assert_eq!(parsed, s);
            assert!(!s.short_label().is_empty());
        }
        assert!("bogus".parse::<Scheduler>().is_err());
    }

    #[test]
    fn build_produces_expected_policies() {
        let cfg = SystemConfig::small();
        assert!(!Scheduler::Random.build(&cfg).serialize_same_hint());
        assert!(!Scheduler::Stealing.build(&cfg).serialize_same_hint());
        assert!(Scheduler::Stealing.build(&cfg).steals());
        assert!(Scheduler::Hints.build(&cfg).serialize_same_hint());
        assert!(Scheduler::LbHints.build(&cfg).serialize_same_hint());
        assert!(Scheduler::LbHints.build(&cfg).bucket_of(swarm_types::Hint::value(1)).is_some());
    }

    #[test]
    fn schedulers_act_as_mapper_factories() {
        // The MapperFactory impl must hand out exactly what build() does, so
        // SimBuilder-constructed engines match hand-wired ones.
        let cfg = SystemConfig::small();
        for s in Scheduler::ALL {
            let direct = s.build(&cfg);
            let via_factory = swarm_sim::MapperFactory::build_mapper(&s, &cfg);
            assert_eq!(direct.name(), via_factory.name());
            assert_eq!(direct.serialize_same_hint(), via_factory.serialize_same_hint());
            assert_eq!(direct.steals(), via_factory.steals());
        }
    }
}
