//! The Random, Stealing and Hints schedulers (Sections II-C and III).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use swarm_sim::TaskMapper;
use swarm_types::{Hint, TileId};

/// Swarm's default scheduler: every new task is sent to a uniformly random
/// tile. Load balances well but ignores locality entirely.
#[derive(Debug)]
pub struct RandomMapper {
    rng: SmallRng,
}

impl RandomMapper {
    /// Create a random mapper with a fixed seed (deterministic runs).
    pub fn new(seed: u64) -> Self {
        RandomMapper { rng: SmallRng::seed_from_u64(seed ^ 0x52414e44) }
    }
}

impl TaskMapper for RandomMapper {
    fn name(&self) -> &str {
        "Random"
    }

    fn map_task(&mut self, _hint: Hint, _creator: Option<TileId>, num_tiles: usize) -> TileId {
        TileId(self.rng.gen_range(0..num_tiles as u32))
    }
}

/// An idealized work-stealing scheduler (the strongest non-speculative
/// baseline the paper compares against): new tasks are enqueued to the
/// creating tile; a tile that runs out of tasks instantaneously steals the
/// earliest-timestamp task from the tile with the most idle tasks.
#[derive(Debug)]
pub struct StealingMapper {
    rng: SmallRng,
}

impl StealingMapper {
    /// Create a stealing mapper with a fixed seed (used only to place
    /// initial tasks, which have no creating tile).
    pub fn new(seed: u64) -> Self {
        StealingMapper { rng: SmallRng::seed_from_u64(seed ^ 0x535445414c) }
    }
}

impl TaskMapper for StealingMapper {
    fn name(&self) -> &str {
        "Stealing"
    }

    fn map_task(&mut self, _hint: Hint, creator: Option<TileId>, num_tiles: usize) -> TileId {
        match creator {
            Some(tile) => tile,
            None => TileId(self.rng.gen_range(0..num_tiles as u32)),
        }
    }

    fn steals(&self) -> bool {
        true
    }

    fn steal_victim(&mut self, thief: TileId, idle_per_tile: &[usize]) -> Option<TileId> {
        let (victim, &count) =
            idle_per_tile.iter().enumerate().max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))?;
        if count == 0 || victim == thief.index() {
            None
        } else {
            Some(TileId(victim as u32))
        }
    }
}

/// The spatial-hints scheduler (Section III): a task with a concrete hint is
/// sent to `hash(hint) mod tiles`; `NOHINT` tasks go to a random tile;
/// `SAMEHINT` tasks inherit their parent's hint before reaching the mapper.
/// Tiles also serialize tasks with equal hashed hints at dispatch.
#[derive(Debug)]
pub struct HintMapper {
    rng: SmallRng,
}

impl HintMapper {
    /// Create a hint mapper with a fixed seed for `NOHINT` placement.
    pub fn new(seed: u64) -> Self {
        HintMapper { rng: SmallRng::seed_from_u64(seed ^ 0x48494e54) }
    }
}

impl TaskMapper for HintMapper {
    fn name(&self) -> &str {
        "Hints"
    }

    fn map_task(&mut self, hint: Hint, creator: Option<TileId>, num_tiles: usize) -> TileId {
        match hint.to_tile(num_tiles) {
            Some(tile) => tile,
            None => match creator {
                // NOHINT from a running task: random tile for load balance.
                Some(_) | None => TileId(self.rng.gen_range(0..num_tiles as u32)),
            },
        }
    }

    fn serialize_same_hint(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn random_mapper_spreads_tasks_over_all_tiles() {
        let mut m = RandomMapper::new(1);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let t = m.map_task(Hint::None, None, 16);
            assert!(t.index() < 16);
            seen.insert(t);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn random_mapper_is_deterministic_per_seed() {
        let mut a = RandomMapper::new(7);
        let mut b = RandomMapper::new(7);
        for _ in 0..100 {
            assert_eq!(a.map_task(Hint::None, None, 64), b.map_task(Hint::None, None, 64));
        }
    }

    #[test]
    fn stealing_mapper_enqueues_locally() {
        let mut m = StealingMapper::new(1);
        assert_eq!(m.map_task(Hint::value(5), Some(TileId(3)), 16), TileId(3));
        assert!(m.steals());
    }

    #[test]
    fn stealing_victim_is_most_loaded_nonempty_tile() {
        let mut m = StealingMapper::new(1);
        assert_eq!(m.steal_victim(TileId(0), &[0, 3, 7, 2]), Some(TileId(2)));
        assert_eq!(m.steal_victim(TileId(2), &[0, 0, 9, 0]), None, "thief is the only loaded tile");
        assert_eq!(m.steal_victim(TileId(0), &[0, 0, 0, 0]), None);
    }

    #[test]
    fn hint_mapper_sends_equal_hints_to_equal_tiles() {
        let mut m = HintMapper::new(1);
        let a = m.map_task(Hint::value(42), Some(TileId(0)), 16);
        let b = m.map_task(Hint::value(42), Some(TileId(9)), 16);
        assert_eq!(a, b);
        assert!(m.serialize_same_hint());
    }

    #[test]
    fn hint_mapper_spreads_distinct_hints() {
        let mut m = HintMapper::new(1);
        let tiles: HashSet<TileId> =
            (0..2000u64).map(|h| m.map_task(Hint::value(h), None, 16)).collect();
        assert_eq!(tiles.len(), 16);
    }

    #[test]
    fn hint_mapper_randomizes_nohint() {
        let mut m = HintMapper::new(1);
        let tiles: HashSet<TileId> =
            (0..200).map(|_| m.map_task(Hint::None, Some(TileId(0)), 16)).collect();
        assert!(tiles.len() > 4, "NOHINT should not stick to one tile");
    }
}
