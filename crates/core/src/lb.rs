//! Data-centric load balancing (Section VI).
//!
//! Instead of hashing a hint directly to a tile, the load balancer hashes it
//! to one of `16 × tiles` *buckets* and looks the bucket up in a
//! reconfigurable *tile map*. Each tile profiles the committed cycles of the
//! buckets mapped to it; periodically a reconfiguration step greedily donates
//! buckets from overloaded tiles to underloaded ones, moving at most a
//! fraction *f* of each tile's surplus/deficit to avoid oscillation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use swarm_sim::TaskMapper;
use swarm_types::{hash_to_bucket, Hint, SystemConfig, TileId};

/// The reconfigurable bucket-to-tile indirection table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileMap {
    map: Vec<TileId>,
    num_tiles: usize,
}

impl TileMap {
    /// Create a tile map of `num_buckets` buckets spread uniformly over
    /// `num_tiles` tiles (the initial configuration in the paper).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or if there are fewer buckets than
    /// tiles.
    pub fn new(num_buckets: usize, num_tiles: usize) -> Self {
        assert!(num_tiles > 0, "need at least one tile");
        assert!(num_buckets >= num_tiles, "need at least one bucket per tile");
        let per_tile = num_buckets / num_tiles;
        let map =
            (0..num_buckets).map(|b| TileId(((b / per_tile).min(num_tiles - 1)) as u32)).collect();
        TileMap { map, num_tiles }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.map.len()
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// The tile a bucket currently maps to.
    pub fn tile_of(&self, bucket: u16) -> TileId {
        self.map[bucket as usize % self.map.len()]
    }

    /// Remap `bucket` to `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn remap(&mut self, bucket: u16, tile: TileId) {
        assert!(tile.index() < self.num_tiles, "tile out of range");
        let idx = bucket as usize % self.map.len();
        self.map[idx] = tile;
    }

    /// Buckets currently mapped to `tile`.
    pub fn buckets_of(&self, tile: TileId) -> Vec<u16> {
        self.map.iter().enumerate().filter(|(_, &t)| t == tile).map(|(b, _)| b as u16).collect()
    }

    /// Greedy rebalancing step shared by both load-balancer variants: given
    /// a per-bucket weight (its contribution to load) move buckets from
    /// overloaded to underloaded tiles, correcting at most `correction_pct`
    /// percent of each tile's surplus or deficit. Returns `true` if any
    /// bucket moved.
    pub fn rebalance(&mut self, bucket_weight: &[u64], correction_pct: u8) -> bool {
        assert_eq!(bucket_weight.len(), self.map.len(), "one weight per bucket");
        let f = f64::from(correction_pct.min(100)) / 100.0;
        let num_tiles = self.num_tiles;
        let mut tile_load = vec![0u64; num_tiles];
        for (b, &w) in bucket_weight.iter().enumerate() {
            tile_load[self.map[b].index()] += w;
        }
        let total: u64 = tile_load.iter().sum();
        if total == 0 {
            return false;
        }
        let avg = total as f64 / num_tiles as f64;
        let mut load: Vec<f64> = tile_load.iter().map(|&l| l as f64).collect();

        // Budget each overloaded tile may give away this epoch (the damping
        // factor f of Section VI: a tile only corrects a fraction of its
        // surplus per reconfiguration, to avoid oscillations).
        let mut give: Vec<f64> = load.iter().map(|&l| ((l - avg) * f).max(0.0)).collect();
        let mut take: Vec<f64> = load.iter().map(|&l| ((avg - l) * f).max(0.0)).collect();

        // Visit overloaded tiles from most to least loaded.
        let mut order: Vec<usize> = (0..num_tiles).collect();
        order.sort_by_key(|&t| std::cmp::Reverse(tile_load[t]));

        let mut changed = false;
        for &src in &order {
            if give[src] <= 0.0 {
                continue;
            }
            // This tile's buckets, heaviest first, so large hot buckets move
            // before dribbles of cold ones.
            let mut buckets = self.buckets_of(TileId(src as u32));
            buckets.sort_by_key(|&b| std::cmp::Reverse(bucket_weight[b as usize]));
            for b in buckets {
                let w = bucket_weight[b as usize] as f64;
                if w <= 0.0 || w > give[src] {
                    continue;
                }
                // Send it to the tile with the largest remaining deficit, as
                // long as the move strictly reduces the gap between the two
                // tiles (prevents ping-ponging a single monster bucket).
                let dst = (0..num_tiles)
                    .filter(|&t| t != src && load[t] + w < load[src])
                    .max_by(|&a, &bt| take[a].total_cmp(&take[bt]));
                let Some(dst) = dst else { continue };
                self.remap(b, TileId(dst as u32));
                give[src] -= w;
                take[dst] -= w;
                load[src] -= w;
                load[dst] += w;
                changed = true;
                if give[src] <= 0.0 {
                    break;
                }
            }
        }
        changed
    }
}

/// The paper's hint-based load balancer: committed cycles per bucket drive
/// the periodic reconfiguration.
#[derive(Debug)]
pub struct LbHintMapper {
    tile_map: TileMap,
    bucket_cycles: Vec<u64>,
    correction_pct: u8,
    rng: SmallRng,
}

impl LbHintMapper {
    /// Create an LBHints mapper for the machine described by `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let buckets = cfg.num_buckets().max(cfg.num_tiles());
        LbHintMapper {
            tile_map: TileMap::new(buckets, cfg.num_tiles()),
            bucket_cycles: vec![0; buckets],
            correction_pct: cfg.lb_correction_pct,
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x4c42_4849),
        }
    }

    /// The current bucket-to-tile mapping (for inspection and tests).
    pub fn tile_map(&self) -> &TileMap {
        &self.tile_map
    }
}

impl TaskMapper for LbHintMapper {
    fn name(&self) -> &str {
        "LBHints"
    }

    fn map_task(&mut self, hint: Hint, _creator: Option<TileId>, num_tiles: usize) -> TileId {
        match self.bucket_of(hint) {
            Some(bucket) => self.tile_map.tile_of(bucket),
            None => TileId(self.rng.gen_range(0..num_tiles as u32)),
        }
    }

    fn bucket_of(&self, hint: Hint) -> Option<u16> {
        hint.raw().map(|v| hash_to_bucket(v, self.tile_map.num_buckets()))
    }

    fn serialize_same_hint(&self) -> bool {
        true
    }

    fn on_commit(&mut self, _tile: TileId, bucket: Option<u16>, cycles: u64) {
        if let Some(b) = bucket {
            let idx = b as usize % self.bucket_cycles.len();
            self.bucket_cycles[idx] += cycles;
        }
    }

    fn on_lb_epoch(&mut self, _now: u64, _idle_per_tile: &[usize]) -> bool {
        let changed = self.tile_map.rebalance(&self.bucket_cycles, self.correction_pct);
        self.bucket_cycles.iter_mut().for_each(|c| *c = 0);
        changed
    }
}

/// The ablation of Section VI-A: the same bucketed tile map, but using idle
/// task counts as the load signal instead of committed cycles. The paper
/// shows this performs significantly worse because balancing queued tasks
/// does not balance useful work.
#[derive(Debug)]
pub struct IdleLbMapper {
    tile_map: TileMap,
    bucket_enqueues: Vec<u64>,
    correction_pct: u8,
    rng: SmallRng,
}

impl IdleLbMapper {
    /// Create an idle-count load balancer for the machine described by `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let buckets = cfg.num_buckets().max(cfg.num_tiles());
        IdleLbMapper {
            tile_map: TileMap::new(buckets, cfg.num_tiles()),
            bucket_enqueues: vec![0; buckets],
            correction_pct: cfg.lb_correction_pct,
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x49444c45),
        }
    }
}

impl TaskMapper for IdleLbMapper {
    fn name(&self) -> &str {
        "IdleLB"
    }

    fn map_task(&mut self, hint: Hint, _creator: Option<TileId>, num_tiles: usize) -> TileId {
        match self.bucket_of(hint) {
            Some(bucket) => {
                let idx = bucket as usize % self.bucket_enqueues.len();
                self.bucket_enqueues[idx] += 1;
                self.tile_map.tile_of(bucket)
            }
            None => TileId(self.rng.gen_range(0..num_tiles as u32)),
        }
    }

    fn bucket_of(&self, hint: Hint) -> Option<u16> {
        hint.raw().map(|v| hash_to_bucket(v, self.tile_map.num_buckets()))
    }

    fn serialize_same_hint(&self) -> bool {
        true
    }

    fn on_lb_epoch(&mut self, _now: u64, idle_per_tile: &[usize]) -> bool {
        // Weight buckets by how many tasks were recently enqueued to them and
        // treat a tile's idle-task count as its load: tiles with long queues
        // donate buckets to tiles with short queues.
        if idle_per_tile.iter().all(|&c| c == 0) {
            self.bucket_enqueues.iter_mut().for_each(|c| *c = 0);
            return false;
        }
        // Scale the per-bucket enqueue counts so tiles with many idle tasks
        // appear overloaded: weight each bucket by its enqueue count times
        // the idleness of its current tile.
        let weights: Vec<u64> = self
            .bucket_enqueues
            .iter()
            .enumerate()
            .map(|(b, &e)| {
                let tile = self.tile_map.tile_of(b as u16).index();
                e * (1 + idle_per_tile.get(tile).copied().unwrap_or(0) as u64)
            })
            .collect();
        let changed = self.tile_map.rebalance(&weights, self.correction_pct);
        self.bucket_enqueues.iter_mut().for_each(|c| *c = 0);
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_map_initially_uniform() {
        let map = TileMap::new(64, 4);
        for t in 0..4u32 {
            assert_eq!(map.buckets_of(TileId(t)).len(), 16);
        }
        assert_eq!(map.tile_of(0), TileId(0));
        assert_eq!(map.tile_of(63), TileId(3));
    }

    #[test]
    fn remap_moves_single_bucket() {
        let mut map = TileMap::new(16, 4);
        map.remap(0, TileId(3));
        assert_eq!(map.tile_of(0), TileId(3));
        assert_eq!(map.buckets_of(TileId(3)).len(), 5);
        assert_eq!(map.buckets_of(TileId(0)).len(), 3);
    }

    #[test]
    fn rebalance_moves_load_from_hot_tile() {
        let mut map = TileMap::new(16, 4);
        // All the load is in tile 0's buckets.
        let mut weights = vec![0u64; 16];
        weights[..4].fill(1000);
        let changed = map.rebalance(&weights, 80);
        assert!(changed);
        let tile0_load: u64 = map.buckets_of(TileId(0)).iter().map(|&b| weights[b as usize]).sum();
        assert!(tile0_load < 4000, "tile 0 should have donated load, still has {tile0_load}");
    }

    #[test]
    fn rebalance_is_damped_by_correction_factor() {
        let mut map_full = TileMap::new(16, 2);
        let mut map_damped = TileMap::new(16, 2);
        let mut weights = vec![0u64; 16];
        weights[..8].fill(100);
        map_full.rebalance(&weights, 100);
        map_damped.rebalance(&weights, 40);
        let moved_full = 8 - map_full.buckets_of(TileId(0)).iter().filter(|&&b| b < 8).count();
        let moved_damped = 8 - map_damped.buckets_of(TileId(0)).iter().filter(|&&b| b < 8).count();
        assert!(moved_full >= moved_damped);
    }

    #[test]
    fn rebalance_with_no_load_does_nothing() {
        let mut map = TileMap::new(16, 4);
        let before = map.clone();
        assert!(!map.rebalance(&[0; 16], 80));
        assert_eq!(map, before);
    }

    #[test]
    fn lbhints_routes_through_tile_map_and_rebalances() {
        let cfg = SystemConfig::small();
        let mut m = LbHintMapper::new(&cfg);

        // Find two hints in *different* buckets that initially map to the
        // *same* tile, so the rebalancer has something it can split.
        let first = Hint::value(0);
        let first_bucket = m.bucket_of(first).unwrap();
        let first_tile = m.map_task(first, None, cfg.num_tiles());
        let second = (1..10_000u64)
            .map(Hint::value)
            .find(|&h| {
                m.bucket_of(h) != Some(first_bucket)
                    && m.tile_map().tile_of(m.bucket_of(h).unwrap()) == first_tile
            })
            .expect("some other bucket maps to the same tile");
        let second_bucket = m.bucket_of(second).unwrap();

        // Both buckets are hot; every other bucket is idle.
        m.on_commit(first_tile, Some(first_bucket), 1_000_000);
        m.on_commit(first_tile, Some(second_bucket), 1_000_000);
        let changed = m.on_lb_epoch(0, &vec![0; cfg.num_tiles()]);
        assert!(changed);
        let a = m.map_task(first, None, cfg.num_tiles());
        let b = m.map_task(second, None, cfg.num_tiles());
        assert_ne!(a, b, "the two hot buckets should end up on different tiles");
    }

    #[test]
    fn lbhints_same_hint_same_tile_between_reconfigs() {
        let cfg = SystemConfig::small();
        let mut m = LbHintMapper::new(&cfg);
        let a = m.map_task(Hint::value(9), Some(TileId(0)), cfg.num_tiles());
        let b = m.map_task(Hint::value(9), Some(TileId(2)), cfg.num_tiles());
        assert_eq!(a, b);
    }

    #[test]
    fn idle_lb_reacts_to_idle_imbalance() {
        let cfg = SystemConfig::small();
        let mut m = IdleLbMapper::new(&cfg);
        // Enqueue many tasks whose buckets map to tile 0.
        let tiles = cfg.num_tiles();
        for h in 0..200u64 {
            let _ = m.map_task(Hint::value(h), None, tiles);
        }
        let mut idle = vec![0usize; tiles];
        idle[0] = 100;
        // Not guaranteed to move anything (depends on bucket placement), but
        // must not panic and must clear its counters.
        let _ = m.on_lb_epoch(0, &idle);
        let _ = m.on_lb_epoch(0, &idle);
    }

    #[test]
    #[should_panic(expected = "one weight per bucket")]
    fn rebalance_rejects_wrong_weight_length() {
        let mut map = TileMap::new(16, 4);
        let _ = map.rebalance(&[1, 2, 3], 80);
    }
}
