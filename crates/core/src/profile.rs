//! Architecture-independent access classification (Fig. 3 and Fig. 6).
//!
//! The paper profiles all memory accesses made by committing tasks and
//! classifies every location along two dimensions:
//!
//! * **read-only vs read-write**: a location is read-only if it is read at
//!   least `ro_reads_per_write` times per write over its lifetime (data that
//!   is initialised before the parallel region and then only read counts as
//!   read-only);
//! * **single-hint vs multi-hint**: a location is single-hint if more than
//!   `single_hint_fraction` of its accesses come from tasks with one hint.
//!
//! Accesses to task arguments form a fifth category. Hints are effective for
//! data that is single-hint — especially single-hint *read-write* data, where
//! mapping all accessors to one tile both improves locality and removes
//! conflicts.

use std::collections::HashMap;

use swarm_sim::CommittedTaskAccesses;
use swarm_types::Hint;

/// Classification thresholds (the paper uses 1000 reads/write and 90%).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifierConfig {
    /// Minimum reads-per-write ratio for a location to count as read-only.
    pub ro_reads_per_write: u64,
    /// Minimum fraction of accesses from a single hint for a location to
    /// count as single-hint.
    pub single_hint_fraction: f64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig { ro_reads_per_write: 1000, single_hint_fraction: 0.9 }
    }
}

/// The five access categories of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Accesses to task arguments.
    Arguments,
    /// Read-write data accessed (almost) exclusively by tasks of one hint.
    SingleHintRw,
    /// Read-write data accessed by tasks with many different hints.
    MultiHintRw,
    /// Read-only data accessed (almost) exclusively by tasks of one hint.
    SingleHintRo,
    /// Read-only data accessed by tasks with many different hints.
    MultiHintRo,
}

impl AccessClass {
    /// All classes in the paper's stacking order.
    pub const ALL: [AccessClass; 5] = [
        AccessClass::Arguments,
        AccessClass::SingleHintRw,
        AccessClass::MultiHintRw,
        AccessClass::SingleHintRo,
        AccessClass::MultiHintRo,
    ];

    /// Short label used in harness tables.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::Arguments => "args",
            AccessClass::SingleHintRw => "1hint-RW",
            AccessClass::MultiHintRw => "Nhint-RW",
            AccessClass::SingleHintRo => "1hint-RO",
            AccessClass::MultiHintRo => "Nhint-RO",
        }
    }
}

/// Access counts per category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessClassification {
    /// Argument accesses.
    pub arguments: u64,
    /// Accesses to single-hint read-write locations.
    pub single_hint_rw: u64,
    /// Accesses to multi-hint read-write locations.
    pub multi_hint_rw: u64,
    /// Accesses to single-hint read-only locations.
    pub single_hint_ro: u64,
    /// Accesses to multi-hint read-only locations.
    pub multi_hint_ro: u64,
}

impl AccessClassification {
    /// Total accesses over all categories.
    pub fn total(&self) -> u64 {
        self.arguments
            + self.single_hint_rw
            + self.multi_hint_rw
            + self.single_hint_ro
            + self.multi_hint_ro
    }

    /// Count for one category.
    pub fn of(&self, class: AccessClass) -> u64 {
        match class {
            AccessClass::Arguments => self.arguments,
            AccessClass::SingleHintRw => self.single_hint_rw,
            AccessClass::MultiHintRw => self.multi_hint_rw,
            AccessClass::SingleHintRo => self.single_hint_ro,
            AccessClass::MultiHintRo => self.multi_hint_ro,
        }
    }

    /// Fraction of total accesses for one category (0 when empty).
    pub fn fraction(&self, class: AccessClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.of(class) as f64 / total as f64
        }
    }

    /// Fraction of *non-argument* read-write accesses that are single-hint.
    /// This is the quantity the paper argues predicts hint effectiveness.
    pub fn single_hint_rw_share(&self) -> f64 {
        let rw = self.single_hint_rw + self.multi_hint_rw;
        if rw == 0 {
            0.0
        } else {
            self.single_hint_rw as f64 / rw as f64
        }
    }
}

#[derive(Default)]
struct LocationStats {
    reads: u64,
    writes: u64,
    per_hint: HashMap<Hint, u64>,
    total: u64,
}

/// Classify the accesses of a set of committed tasks.
pub fn classify_accesses(
    tasks: &[CommittedTaskAccesses],
    cfg: ClassifierConfig,
) -> AccessClassification {
    let mut locations: HashMap<u64, LocationStats> = HashMap::new();
    let mut arguments = 0u64;
    for task in tasks {
        arguments += task.num_args as u64;
        for &(addr, is_write) in &task.accesses {
            let loc = locations.entry(addr).or_default();
            if is_write {
                loc.writes += 1;
            } else {
                loc.reads += 1;
            }
            *loc.per_hint.entry(task.hint).or_insert(0) += 1;
            loc.total += 1;
        }
    }

    let mut result = AccessClassification { arguments, ..Default::default() };
    for loc in locations.values() {
        let read_only =
            loc.writes == 0 || loc.reads >= loc.writes.saturating_mul(cfg.ro_reads_per_write);
        let max_one_hint = loc.per_hint.values().copied().max().unwrap_or(0);
        let single_hint =
            loc.total > 0 && (max_one_hint as f64 / loc.total as f64) > cfg.single_hint_fraction;
        match (read_only, single_hint) {
            (true, true) => result.single_hint_ro += loc.total,
            (true, false) => result.multi_hint_ro += loc.total,
            (false, true) => result.single_hint_rw += loc.total,
            (false, false) => result.multi_hint_rw += loc.total,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(hint: u64, accesses: Vec<(u64, bool)>) -> CommittedTaskAccesses {
        CommittedTaskAccesses { hint: Hint::value(hint), num_args: 1, accesses }
    }

    #[test]
    fn single_hint_rw_location_is_classified() {
        // One location written repeatedly by tasks that all carry hint 7.
        let tasks: Vec<_> = (0..10).map(|_| task(7, vec![(0x100, true), (0x100, false)])).collect();
        let c = classify_accesses(&tasks, ClassifierConfig::default());
        assert_eq!(c.single_hint_rw, 20);
        assert_eq!(c.multi_hint_rw, 0);
        assert_eq!(c.arguments, 10);
        assert!(c.single_hint_rw_share() > 0.99);
    }

    #[test]
    fn multi_hint_rw_location_is_classified() {
        let tasks: Vec<_> = (0..10).map(|h| task(h, vec![(0x200, true)])).collect();
        let c = classify_accesses(&tasks, ClassifierConfig::default());
        assert_eq!(c.multi_hint_rw, 10);
        assert_eq!(c.single_hint_rw, 0);
    }

    #[test]
    fn never_written_location_is_read_only() {
        let tasks: Vec<_> = (0..5).map(|h| task(h, vec![(0x300, false)])).collect();
        let c = classify_accesses(&tasks, ClassifierConfig::default());
        assert_eq!(c.multi_hint_ro, 5);
        assert_eq!(c.single_hint_ro + c.single_hint_rw + c.multi_hint_rw, 0);
    }

    #[test]
    fn read_mostly_location_respects_threshold() {
        // 1 write, 10 reads: read-only only if the threshold allows it.
        let mut accesses = vec![(0x400u64, true)];
        accesses.extend(std::iter::repeat_n((0x400u64, false), 10));
        let tasks = vec![task(1, accesses)];
        let strict = classify_accesses(&tasks, ClassifierConfig::default());
        assert_eq!(strict.single_hint_rw, 11, "1000:1 threshold keeps it read-write");
        let lenient = classify_accesses(
            &tasks,
            ClassifierConfig { ro_reads_per_write: 5, single_hint_fraction: 0.9 },
        );
        assert_eq!(lenient.single_hint_ro, 11);
    }

    #[test]
    fn fractions_sum_to_one() {
        let tasks = vec![
            task(1, vec![(0x100, true), (0x200, false)]),
            task(2, vec![(0x100, true), (0x300, false)]),
        ];
        let c = classify_accesses(&tasks, ClassifierConfig::default());
        let sum: f64 = AccessClass::ALL.iter().map(|&cl| c.fraction(cl)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn empty_input_yields_empty_classification() {
        let c = classify_accesses(&[], ClassifierConfig::default());
        assert_eq!(c.total(), 0);
        assert_eq!(c.fraction(AccessClass::Arguments), 0.0);
        assert_eq!(c.single_hint_rw_share(), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            AccessClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
