//! Smoke test: every `examples/*.rs` target must run to completion.
//!
//! The examples double as executable documentation of the public API, and
//! each one validates its simulated results against a serial reference
//! (panicking on mismatch), so "ran and exited 0 with output" is a real
//! end-to-end check. The example list is discovered from the filesystem so
//! a newly added example can never silently rot outside this test.

use std::path::Path;
use std::process::Command;

fn example_names() -> Vec<String> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ directory must exist")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            if path.extension().is_some_and(|ext| ext == "rs") {
                Some(path.file_stem().expect("stem").to_string_lossy().into_owned())
            } else {
                None
            }
        })
        .collect();
    names.sort();
    names
}

#[test]
fn every_example_runs_and_produces_output() {
    let names = example_names();
    assert!(names.len() >= 5, "expected the four seed examples plus kvstore_zipf, found {names:?}");
    assert!(
        names.iter().any(|n| n == "kvstore_zipf"),
        "the beyond-Table-I example is missing: {names:?}"
    );
    for name in names {
        let output = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--example", &name])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
        assert!(
            output.status.success(),
            "example `{name}` exited with {:?}\nstdout:\n{}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(!output.stdout.is_empty(), "example `{name}` printed nothing to stdout");
    }
}
