//! Determinism and reproducibility: the whole point of a simulator-based
//! evaluation is that every number can be regenerated exactly.
//!
//! The repeated-run bit-identity check that used to live here was promoted
//! into `tests/conformance.rs`, which asserts it for *every* app × scheduler
//! × core-count combination through `swarm_sim::conformance`. What remains
//! here is the complementary direction: changing only the seed must change
//! the generated workload (the generators do not ignore their seed) while
//! every seed still validates.

use swarm_repro::prelude::*;

fn run(spec: AppSpec, scheduler: Scheduler, cores: u32, seed: u64) -> RunStats {
    let mut engine = Sim::builder()
        .cores(cores)
        .app_boxed(spec.build(InputScale::Tiny, seed))
        .scheduler(scheduler)
        .build()
        .expect("a valid simulation description");
    engine.run().expect("run must validate")
}

#[test]
fn different_seeds_produce_different_but_valid_workloads() {
    // One representative per generator family: transactions (silo), flow
    // networks (maxflow) and Zipfian op streams (kvstore). Both runs of
    // each pair validated inside run(); the workloads must genuinely
    // differ.
    for bench in [BenchmarkId::Silo, BenchmarkId::Maxflow, BenchmarkId::Kvstore] {
        let a = run(AppSpec::coarse(bench), Scheduler::Hints, 16, 1);
        let b = run(AppSpec::coarse(bench), Scheduler::Hints, 16, 2);
        assert_ne!(
            (a.runtime_cycles, a.tasks_committed),
            (b.runtime_cycles, b.tasks_committed),
            "changing the seed should change the generated {bench} workload"
        );
    }
}

#[test]
fn scheduler_choice_does_not_change_application_results_only_performance() {
    // Same seed, different schedulers: committed work identical, performance
    // different. (Result equality is enforced by per-app validation inside
    // the engine; here we check the performance side actually varies, i.e.
    // the schedulers are not accidentally aliases of each other.)
    let random = run(AppSpec::coarse(BenchmarkId::Nocsim), Scheduler::Random, 16, 5);
    let hints = run(AppSpec::coarse(BenchmarkId::Nocsim), Scheduler::Hints, 16, 5);
    assert_eq!(random.tasks_committed, hints.tasks_committed);
    assert_ne!(
        (random.runtime_cycles, random.traffic.total()),
        (hints.runtime_cycles, hints.traffic.total()),
        "Random and Hints produced identical timing, which is vanishingly unlikely"
    );
}
