//! Determinism and reproducibility: the whole point of a simulator-based
//! evaluation is that every number in EXPERIMENTS.md can be regenerated
//! exactly. These tests run identical configurations twice and demand
//! bit-identical statistics, and check that changing only the seed changes
//! the workload but not its validity.

use swarm_repro::prelude::*;

fn run(spec: AppSpec, scheduler: Scheduler, cores: u32, seed: u64) -> RunStats {
    let cfg = SystemConfig::with_cores(cores);
    let app = spec.build(InputScale::Tiny, seed);
    let mut engine = Engine::new(cfg.clone(), app, scheduler.build(&cfg));
    engine.run().expect("run must validate")
}

#[test]
fn identical_configurations_produce_identical_statistics() {
    for scheduler in [Scheduler::Random, Scheduler::Hints, Scheduler::LbHints] {
        let a = run(AppSpec::coarse(BenchmarkId::Des), scheduler, 16, 3);
        let b = run(AppSpec::coarse(BenchmarkId::Des), scheduler, 16, 3);
        assert_eq!(a.runtime_cycles, b.runtime_cycles, "{scheduler} is nondeterministic");
        assert_eq!(a.tasks_committed, b.tasks_committed);
        assert_eq!(a.tasks_aborted, b.tasks_aborted);
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.traffic, b.traffic);
    }
}

#[test]
fn different_seeds_produce_different_but_valid_workloads() {
    let a = run(AppSpec::coarse(BenchmarkId::Silo), Scheduler::Hints, 16, 1);
    let b = run(AppSpec::coarse(BenchmarkId::Silo), Scheduler::Hints, 16, 2);
    // Both validated inside run(); the workloads should genuinely differ.
    assert_ne!(
        (a.runtime_cycles, a.tasks_committed),
        (b.runtime_cycles, b.tasks_committed),
        "changing the seed should change the generated transaction mix"
    );
}

#[test]
fn scheduler_choice_does_not_change_application_results_only_performance() {
    // Same seed, different schedulers: committed work identical, performance
    // different. (Result equality is enforced by per-app validation inside
    // the engine; here we check the performance side actually varies, i.e.
    // the schedulers are not accidentally aliases of each other.)
    let random = run(AppSpec::coarse(BenchmarkId::Nocsim), Scheduler::Random, 16, 5);
    let hints = run(AppSpec::coarse(BenchmarkId::Nocsim), Scheduler::Hints, 16, 5);
    assert_eq!(random.tasks_committed, hints.tasks_committed);
    assert_ne!(
        (random.runtime_cycles, random.traffic.total()),
        (hints.runtime_cycles, hints.traffic.total()),
        "Random and Hints produced identical timing, which is vanishingly unlikely"
    );
}
