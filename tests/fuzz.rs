//! The SwarmApp fuzzer: random legal Swarm programs, sampled by the
//! `swarm_sim::fuzz::scenario` proptest strategy, driven through the full
//! conformance battery under **all four paper schedulers** at 1 and 8
//! cores (validation, bit-identical determinism, accounting invariants,
//! line-table drain, schedule-independent commit counts) — half the
//! scenarios additionally run on a queue-starved machine that forces
//! spills, refills and dispatch-time resource aborts.
//!
//! The 1000 cases are split across four `#[test]`s (250 each, distinct
//! deterministic seeds derived from the test names) so libtest parallelism
//! keeps the wall-clock inside the CI budget. On failure the proptest shim
//! shrinks the recorded draw stream to a minimal scenario and prints both
//! the scenario and the replay stream; pin it in [`corpus`] as a named
//! regression test.
//!
//! Alongside the random sweep, this file holds the deterministic
//! adversarial end-to-end tests: the single legal single-core abort source
//! (spill-induced commit-order inversion) and the deadlock detector driven
//! through `Engine::run` on a wedged machine.

use proptest::prelude::*;
use swarm_repro::apps::synth::{Hostile, HostileWorkload};
use swarm_repro::prelude::*;
use swarm_repro::sim::conformance::MapperSpec;
use swarm_repro::sim::fault::FaultPlan;
use swarm_repro::sim::fuzz::{
    check_scenario, check_scenario_with_faults, fault_plan, scenario, ScenarioSpec,
};
use swarm_repro::types::{SimError, TaskId};

type MapperBuilder = Box<dyn Fn(&SystemConfig) -> Box<dyn TaskMapper>>;

/// The four paper schedulers as conformance-kit mapper factories.
fn paper_mappers() -> Vec<(&'static str, MapperBuilder)> {
    Scheduler::ALL
        .iter()
        .map(|&s| {
            let build: MapperBuilder = Box::new(move |cfg: &SystemConfig| s.build(cfg));
            (s.name(), build)
        })
        .collect()
}

/// Run one sampled scenario through the whole battery; panics (which the
/// proptest runner shrinks) on the first violated invariant.
fn check(spec: &ScenarioSpec) {
    let builders = paper_mappers();
    let mappers: Vec<MapperSpec<'_>> =
        builders.iter().map(|(name, build)| MapperSpec { name, build: build.as_ref() }).collect();
    check_scenario(spec, &mappers, &[1, 8])
        .unwrap_or_else(|e| panic!("scenario violated conformance: {e}\nspec: {spec:?}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]
    #[test]
    fn random_scenarios_conform_part_a(spec in scenario()) {
        check(&spec);
    }

    #[test]
    fn random_scenarios_conform_part_b(spec in scenario()) {
        check(&spec);
    }

    #[test]
    fn random_scenarios_conform_part_c(spec in scenario()) {
        check(&spec);
    }

    #[test]
    fn random_scenarios_conform_part_d(spec in scenario()) {
        check(&spec);
    }
}

/// Run one sampled (scenario, fault plan) pair through the chaos contract
/// under every paper scheduler: each combo must either complete clean and
/// bit-identical on repeat, or fail with the same typed `SimError` on
/// repeat — never hang, panic, or leak residue.
fn check_with_faults(spec: &ScenarioSpec, plan: &FaultPlan) {
    let builders = paper_mappers();
    let mappers: Vec<MapperSpec<'_>> =
        builders.iter().map(|(name, build)| MapperSpec { name, build: build.as_ref() }).collect();
    check_scenario_with_faults(spec, plan, &mappers, &[1, 8]).unwrap_or_else(|e| {
        panic!("faulted scenario violated the chaos contract: {e}\nspec: {spec:?}\nplan: {plan}")
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]
    #[test]
    fn fault_scenarios_conform_part_a(spec in scenario(), plan in fault_plan()) {
        check_with_faults(&spec, &plan);
    }

    #[test]
    fn fault_scenarios_conform_part_b(spec in scenario(), plan in fault_plan()) {
        check_with_faults(&spec, &plan);
    }
}

/// The regression corpus: every counterexample the fuzzer ever finds is
/// shrunk (the runner prints the minimal replay stream) and pinned here as
/// a named test replaying that exact stream, so the bug class stays fixed
/// forever. The corpus is empty so far: the sweep above has not produced a
/// surviving counterexample on the committed engine.
///
/// To pin one, take the printed `replay stream` and add:
///
/// ```ignore
/// #[test]
/// fn shrunk_description_of_the_bug() {
///     corpus::replay(vec![/* minimal stream */]);
/// }
/// ```
mod corpus {
    use super::*;

    /// Regenerate the scenario a recorded stream denotes and re-check it.
    #[allow(dead_code)]
    pub fn replay(stream: Vec<u64>) {
        let mut rng = TestRng::replay(stream);
        let spec = scenario().generate(&mut rng);
        check(&spec);
    }

    /// Meta-test: the corpus replay path itself keeps working (an empty
    /// stream denotes the minimal one-task scenario).
    #[test]
    fn replaying_the_minimal_stream_conforms() {
        replay(Vec::new());
    }
}

/// A machine with almost no task-queue headroom: 10 entries and a
/// one-task-at-a-time coalescer. With `spill_batch = 1` each overflowing
/// enqueue spills one task and inserts one, so once the queue reaches
/// capacity it *stays* there between commits — and a full queue is exactly
/// the condition under which the dispatcher may not refill an
/// earlier-timestamp spilled task, forcing out-of-commit-order execution.
fn starved_single_core() -> SystemConfig {
    let mut cfg = SystemConfig::single_core();
    cfg.queues.task_queue_per_core = 10;
    cfg.queues.commit_queue_per_core = 4;
    cfg.queues.spill_threshold_pct = 60;
    cfg.queues.spill_batch = 1;
    cfg
}

/// The one legal way a single core can abort: a task-queue overflow spills
/// an early-timestamp task, a later one executes first, and the refilled
/// early task's conflicting write rolls the later one back. The spill-storm
/// generator makes this deterministic on a starved queue: a 48-wide wave
/// (cap 10) guarantees spills, every task updates one shared counter, and
/// each wave task's fan-out keeps the queue at capacity so spilled
/// early tasks cannot refill before later ones dispatch.
#[test]
fn spill_induced_inversion_is_the_single_core_abort_source() {
    let w = HostileWorkload::spill_storm(48, 4, 30, 21);
    let mut engine = Sim::builder()
        .config(starved_single_core())
        .app(Hostile::new(w))
        .scheduler(Scheduler::Hints)
        .build()
        .expect("valid starved single-core simulation");
    let stats = engine.run().expect("inverted execution must still serialize correctly");
    assert_eq!(stats.cores, 1);
    assert!(stats.tasks_spilled > 0, "a 48-wide wave must overflow a 10-entry queue");
    assert!(
        stats.tasks_aborted > 0,
        "queue starvation must force an out-of-commit-order execution visible as an abort \
         (spilled {} tasks)",
        stats.tasks_spilled
    );
    // And the same workload on an unstarved single core stays abort-free:
    // without an inversion there is no legal single-core abort source.
    let mut engine = Sim::builder()
        .config(SystemConfig::single_core())
        .app(Hostile::new(HostileWorkload::spill_storm(40, 1, 30, 21)))
        .scheduler(Scheduler::Hints)
        .build()
        .expect("valid single-core simulation");
    let stats = engine.run().expect("must validate");
    assert_eq!(stats.tasks_aborted, 0, "no overflow pressure, no single-core aborts");
}

/// The deadlock detector, end to end: a real hostile workload runs through
/// spills and aborts, drains — and then the engine discovers the planted
/// lost task (a task registered as remaining work with no queue entry and
/// no wake, the fault class `Engine::inject_lost_task` documents) and
/// reports `SimError::Deadlock` instead of spinning on GVT events forever.
#[test]
fn wedged_run_reports_deadlock_with_remaining_work() {
    for (cores, scheduler) in [(1u32, Scheduler::Hints), (16, Scheduler::Stealing)] {
        let w = HostileWorkload::spill_storm(48, 2, 20, 33);
        let mut engine = Sim::builder()
            .cores(cores)
            .app(Hostile::new(w))
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        // Far past all real work, so every healthy task drains first.
        engine.inject_lost_task(u64::MAX / 2);
        let err = engine.run().expect_err("a wedged run must error, not hang");
        let SimError::Deadlock { remaining, min_ts, stuck_task } = &err else {
            panic!("at {cores} cores under {}, expected a deadlock, got {err}", scheduler.name());
        };
        assert_eq!(*remaining, 1, "the planted task must be the only remainder");
        assert_eq!(*min_ts, u64::MAX / 2, "diagnostics must name the planted timestamp");
        // Injection precedes run(), so the planted task fills the first
        // arena slot — the diagnosis must name it exactly.
        assert_eq!(*stuck_task, TaskId(0), "diagnostics must name the planted task");
    }
}
