//! Cross-crate integration tests asserting that the headline *shapes* of
//! the paper hold at a scale a laptop can simulate. Each run is validated
//! against its serial reference inside `Engine::run`.
//!
//! The blanket correctness checks that used to live here (every app ×
//! scheduler validates, commit counts are scheduler-independent, single
//! cores never misspeculate, repeated runs are bit-identical) were promoted
//! into the table-driven `tests/conformance.rs` suite, which runs them over
//! every benchmark — including the beyond-Table-I workloads — through
//! `swarm_sim::conformance`.

use swarm_repro::prelude::*;

fn run(spec: AppSpec, scheduler: Scheduler, cores: u32) -> RunStats {
    let mut engine = Sim::builder()
        .cores(cores)
        .app_boxed(spec.build(InputScale::Tiny, 99))
        .scheduler(scheduler)
        .build()
        .expect("a valid simulation description");
    engine.run().unwrap_or_else(|e| {
        panic!("{} under {scheduler} at {cores} cores failed: {e}", spec.name())
    })
}

#[test]
fn hints_reduce_aborts_and_traffic_on_the_object_partitioned_apps() {
    // The paper's headline efficiency claim (Section IV-C): on des, nocsim
    // and silo, where most read-write data is single-hint, Hints wastes far
    // less work and moves far less data than Random.
    for bench in [BenchmarkId::Des, BenchmarkId::Nocsim] {
        let random = run(AppSpec::coarse(bench), Scheduler::Random, 16);
        let hints = run(AppSpec::coarse(bench), Scheduler::Hints, 16);
        assert!(
            hints.tasks_aborted <= random.tasks_aborted,
            "{bench}: hints aborted more ({}) than random ({})",
            hints.tasks_aborted,
            random.tasks_aborted
        );
        assert!(
            hints.traffic.total() < random.traffic.total(),
            "{bench}: hints moved more data ({}) than random ({})",
            hints.traffic.total(),
            random.traffic.total()
        );
    }
}

#[test]
fn hints_cut_waste_on_the_beyond_table1_workloads_too() {
    // The new workloads exist because their hint structure differs from the
    // Table I nine, but the paper's efficiency claim must still hold: on
    // maxflow (vertex-line hints over two-hop push write sets), triangle
    // (lower-degree-endpoint hints with a long-tail distribution) and
    // kvstore (Zipfian-hot key hints), Hints aborts less and moves less
    // data than Random.
    for bench in BenchmarkId::BEYOND_TABLE1 {
        let random = run(AppSpec::coarse(bench), Scheduler::Random, 16);
        let hints = run(AppSpec::coarse(bench), Scheduler::Hints, 16);
        assert!(
            hints.tasks_aborted < random.tasks_aborted,
            "{bench}: hints aborted {} vs random's {}",
            hints.tasks_aborted,
            random.tasks_aborted
        );
        assert!(
            hints.traffic.total() < random.traffic.total(),
            "{bench}: hints moved {} flit-hops vs random's {}",
            hints.traffic.total(),
            random.traffic.total()
        );
    }
    // Triangle's write set is exactly its hinted line, so same-hint
    // serialization removes conflicts entirely.
    let triangle = run(AppSpec::coarse(BenchmarkId::Triangle), Scheduler::Hints, 16);
    assert_eq!(triangle.tasks_aborted, 0, "triangle under hints should never conflict");
}

#[test]
fn load_balancer_reduces_committed_cycle_imbalance_on_nocsim() {
    // Section VI: tornado traffic overloads central columns; LBHints remaps
    // router buckets so per-tile committed cycles even out relative to
    // static Hints. Use a workload long enough for several reconfiguration
    // epochs.
    use swarm_repro::apps::nocsim::{NocWorkload, Nocsim};
    let run_with = |scheduler: Scheduler| {
        let mut cfg = SystemConfig::with_cores(16);
        cfg.lb_epoch = 2_000;
        let workload = NocWorkload::tornado(8, 12, 17);
        let mut engine = Sim::builder()
            .config(cfg)
            .app(Nocsim::new(workload))
            .scheduler(scheduler)
            .build()
            .expect("a valid simulation description");
        engine.run().expect("nocsim must validate")
    };
    let hints = run_with(Scheduler::Hints);
    let lb = run_with(Scheduler::LbHints);
    assert!(lb.lb_reconfigs > 0, "the load balancer never reconfigured");
    assert!(
        lb.load_imbalance() <= hints.load_imbalance() * 1.25,
        "LBHints imbalance ({:.3}) much worse than Hints ({:.3})",
        lb.load_imbalance(),
        hints.load_imbalance()
    );
}

#[test]
fn cycle_breakdowns_cover_the_machine_time() {
    let stats = run(AppSpec::coarse(BenchmarkId::Silo), Scheduler::Hints, 16);
    let wall = stats.runtime_cycles * stats.cores as u64;
    let accounted = stats.breakdown.total();
    assert!(accounted > 0);
    // The breakdown may exceed the wall-clock budget slightly because spill
    // cycles are charged on top of core time, but it must stay in the same
    // ballpark and the busy part must fit inside the wall clock.
    assert!(stats.breakdown.committed + stats.breakdown.aborted <= wall);
    assert!(accounted <= wall + stats.breakdown.spill + stats.runtime_cycles);
}

#[test]
fn access_classification_explains_hint_effectiveness() {
    // Fig. 3 / Fig. 6 shape: des is dominated by single-hint read-write
    // accesses; coarse-grain sssp has mostly multi-hint read-write accesses,
    // and its fine-grain version flips that.
    let classify = |spec: AppSpec| {
        let mut engine = Sim::builder()
            .cores(4)
            .app_boxed(spec.build(InputScale::Tiny, 7))
            .scheduler(Scheduler::Hints)
            .profiling(true)
            .build()
            .expect("a valid simulation description");
        let stats = engine.run().unwrap();
        classify_accesses(&stats.committed_accesses, ClassifierConfig::default())
    };
    let des = classify(AppSpec::coarse(BenchmarkId::Des));
    assert!(des.single_hint_rw_share() > 0.9, "des read-write data should be single-hint");

    let sssp_cg = classify(AppSpec::coarse(BenchmarkId::Sssp));
    let sssp_fg = classify(AppSpec::fine(BenchmarkId::Sssp));
    assert!(
        sssp_fg.single_hint_rw_share() > sssp_cg.single_hint_rw_share(),
        "fine-grain sssp must raise the single-hint share ({:.2} vs {:.2})",
        sssp_fg.single_hint_rw_share(),
        sssp_cg.single_hint_rw_share()
    );
    assert!(sssp_fg.single_hint_rw_share() > 0.9);
}
