//! Determinism of the parallel experiment runner: a multi-threaded sweep
//! must produce **byte-identical** `ExperimentPoint` results (stats,
//! speedups, ordering) to the single-threaded path, for it to be safe to
//! regenerate the paper's figures at any `--jobs` level.
//!
//! Every simulated run draws all randomness from its own seed, so the only
//! way parallelism could change results is through result *reassembly* —
//! which is exactly what these tests pin down, across three apps × two
//! schedulers (an ordered and an unordered Table I benchmark plus a
//! beyond-Table-I workload, under a hint-based and a hint-oblivious
//! scheduler). `tests/conformance.rs` additionally sweeps every app ×
//! scheduler point through the pool at `--jobs 1` vs `--jobs 8`.

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId, InputScale};
use swarm_bench::{
    format_speedup_table, speedup_curve, CurveSpec, FailurePolicy, Pool, RunRequest,
};
use swarm_sim::{FaultEvent, FaultKind};
use swarm_types::TileId;

const APPS: [BenchmarkId; 3] = [BenchmarkId::Sssp, BenchmarkId::Kmeans, BenchmarkId::Kvstore];
const SCHEDULERS: [Scheduler; 2] = [Scheduler::Random, Scheduler::Hints];
const CORES: [u32; 3] = [1, 2, 4];
const SEED: u64 = 0xF1605;

/// The full three-app × two-scheduler curve set.
fn series() -> Vec<CurveSpec> {
    APPS.iter()
        .flat_map(|&app| {
            SCHEDULERS.iter().map(move |&s| {
                (format!("{}-{}", app.name(), s.short_label()), AppSpec::coarse(app), s)
            })
        })
        .collect()
}

#[test]
fn multi_threaded_sweep_is_byte_identical_to_jobs_1() {
    let series = series();
    let serial = Pool::new(1).speedup_curves(&series, &CORES, InputScale::Tiny, SEED);
    let parallel = Pool::new(4).speedup_curves(&series, &CORES, InputScale::Tiny, SEED);

    // Byte-identical ExperimentPoints: requests, full stats (cycle
    // breakdowns, traffic, per-tile counters) and speedups, in order.
    assert_eq!(format!("{serial:#?}"), format!("{parallel:#?}"));

    // And the rendered figure output is byte-identical too.
    assert_eq!(format_speedup_table(&serial), format_speedup_table(&parallel));
}

#[test]
fn pool_sweep_matches_the_hand_written_serial_reference() {
    for &app in &APPS {
        for &scheduler in &SCHEDULERS {
            let spec = AppSpec::coarse(app);
            let reference = speedup_curve(spec, scheduler, &CORES, InputScale::Tiny, SEED);
            let pooled = Pool::new(4).sweep_cores(spec, scheduler, &CORES, InputScale::Tiny, SEED);
            assert_eq!(
                format!("{reference:#?}"),
                format!("{pooled:#?}"),
                "{} under {scheduler} diverged from the serial reference",
                app.name()
            );
        }
    }
}

#[test]
fn run_matrix_preserves_request_order_under_contention() {
    // More requests than workers, deliberately shuffled core counts, so
    // the shared-cursor dispatch must reorder execution — results must not
    // reorder.
    let requests: Vec<RunRequest> = [4, 1, 2, 8, 2, 1, 4, 8]
        .iter()
        .map(|&cores| {
            RunRequest::new(
                AppSpec::coarse(BenchmarkId::Sssp),
                Scheduler::Hints,
                cores,
                InputScale::Tiny,
            )
        })
        .collect();
    let serial = Pool::new(1).run_matrix(&requests);
    let parallel = Pool::new(3).run_matrix(&requests);
    for ((req, s), p) in requests.iter().zip(&serial).zip(&parallel) {
        assert_eq!(s.cores, req.cores as usize);
        assert_eq!(format!("{s:?}"), format!("{p:?}"));
    }
}

#[test]
fn faulted_matrix_is_byte_identical_across_jobs() {
    // Benign faults perturb timing deterministically: a faulted matrix must
    // stay byte-identical between --jobs 1 and --jobs 8, exactly like a
    // healthy one.
    let benign = [
        FaultEvent {
            at_cycle: 40,
            kind: FaultKind::DelayedMessage { tile: TileId(0), extra_cycles: 9 },
        },
        FaultEvent { at_cycle: 60, kind: FaultKind::DuplicateMessage },
        FaultEvent { at_cycle: 80, kind: FaultKind::AbortStorm },
    ];
    let requests: Vec<RunRequest> = APPS
        .iter()
        .zip(benign)
        .map(|(&app, fault)| {
            RunRequest::new(AppSpec::coarse(app), Scheduler::Hints, 4, InputScale::Tiny)
                .with_fault(fault)
        })
        .collect();
    let serial = Pool::new(1).run_matrix(&requests);
    let parallel = Pool::new(8).run_matrix(&requests);
    assert_eq!(format!("{serial:#?}"), format!("{parallel:#?}"));
}

#[test]
fn failing_matrix_results_are_byte_identical_across_jobs_under_collect_all() {
    // With CollectAll, every slot — including each typed failure — must be
    // reassembled identically at any --jobs level.
    let doom = FaultEvent { at_cycle: 0, kind: FaultKind::LostTaskWake { ts: 1 } };
    let requests: Vec<RunRequest> = [1u32, 2, 4, 8]
        .iter()
        .enumerate()
        .map(|(i, &cores)| {
            let r = RunRequest::new(
                AppSpec::coarse(BenchmarkId::Sssp),
                Scheduler::Hints,
                cores,
                InputScale::Tiny,
            );
            if i % 2 == 1 {
                r.with_fault(doom)
            } else {
                r
            }
        })
        .collect();
    let serial = Pool::new(1).with_policy(FailurePolicy::CollectAll).try_run_matrix(&requests);
    let parallel = Pool::new(8).with_policy(FailurePolicy::CollectAll).try_run_matrix(&requests);
    assert_eq!(format!("{serial:#?}"), format!("{parallel:#?}"));
    assert_eq!(serial.iter().filter(|r| r.is_err()).count(), 2);
}

#[test]
fn profiled_matrix_is_deterministic_across_jobs() {
    let requests: Vec<RunRequest> = APPS
        .iter()
        .map(|&app| RunRequest::new(AppSpec::coarse(app), Scheduler::Hints, 4, InputScale::Tiny))
        .collect();
    let serial = Pool::new(1).run_matrix_profiled(&requests);
    let parallel = Pool::new(2).run_matrix_profiled(&requests);
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    assert!(serial.iter().all(|s| !s.committed_accesses.is_empty()));
}
