//! The SwarmApp conformance suite: every benchmark — the Table I nine, the
//! three beyond-Table-I workloads, the three synthetic scenario families,
//! and the four fine-grain variants — runs through the generic test-kit in
//! `swarm_sim::conformance`, which asserts per app × scheduler × core count:
//!
//! * the run completes and `validate()` accepts the final memory against
//!   the app's serial reference;
//! * repeated identical runs produce bit-identical statistics and memory;
//! * commit/abort accounting invariants hold (per-tile ledger consistency,
//!   busy cycles within the wall clock, no single-core misspeculation, the
//!   speculative line table drains);
//! * where the app's task structure is schedule-independent, committed task
//!   counts match across every scheduler and core count.
//!
//! This suite is the promoted, table-driven form of checks that previously
//! lived ad hoc in `tests/end_to_end.rs` and `tests/determinism.rs`; those
//! files now keep only the paper-*shape* assertions. Adding a benchmark
//! means adding one row here — the completeness test fails otherwise.
//!
//! A separate test locks the experiment-runner half of the contract: every
//! app's results are byte-identical between `--jobs 1` and `--jobs 8`.

use spatial_hints::Scheduler;
use swarm_bench::{Pool, RunRequest};
use swarm_repro::prelude::*;
use swarm_repro::sim::conformance::{check_app, ConformanceOptions, MapperSpec};
use swarm_repro::sim::TaskMapper;

const SEED: u64 = 99;

fn spec(bench: BenchmarkId, fine: bool) -> AppSpec {
    if fine {
        AppSpec::fine(bench)
    } else {
        AppSpec::coarse(bench)
    }
}

/// Run the kit over one app under all four schedulers at 1 and 16 cores.
fn check(spec: AppSpec, stable_commit_count: bool) {
    check_with_options(
        spec,
        ConformanceOptions { stable_commit_count, ..ConformanceOptions::default() },
    );
}

/// [`check`] with explicit [`ConformanceOptions`] (the contention shard
/// overrides the machine-configuration hook).
fn check_with_options(spec: AppSpec, opts: ConformanceOptions) {
    type Builder = Box<dyn Fn(&SystemConfig) -> Box<dyn TaskMapper>>;
    let builders: Vec<(&'static str, Builder)> = Scheduler::ALL
        .iter()
        .map(|&s| (s.name(), Box::new(move |cfg: &SystemConfig| s.build(cfg)) as Builder))
        .collect();
    let mappers: Vec<MapperSpec<'_>> =
        builders.iter().map(|(name, build)| MapperSpec { name, build: build.as_ref() }).collect();
    let report = check_app(&|| spec.build(InputScale::Tiny, SEED), &mappers, &opts)
        .unwrap_or_else(|e| panic!("{} failed conformance: {e}", spec.name()));
    assert_eq!(report.combos.len(), Scheduler::ALL.len() * opts.core_counts.len());
    assert_eq!(report.runs, report.combos.len() * opts.repeats);
}

/// A machine configuration with the contention NoC model enabled.
fn contention_config(cores: u32) -> SystemConfig {
    let mut cfg = SystemConfig::with_cores(cores);
    cfg.noc.model = swarm_repro::types::NocModel::Contention;
    cfg
}

/// One row per app: `name => (benchmark, fine_grain, stable_commit_count)`.
///
/// `stable_commit_count` is false only for coarse `sssp` and `astar` —
/// both spawn several tasks at *equal* timestamps for the same vertex, and
/// which of the ties commits first (and therefore whether the later ones
/// re-spawn) legitimately depends on the schedule — and for the synthetic
/// `stream` app, whose relaxation wavefront re-spawns depend the same way on
/// how equal-timestamp relaxations serialize; every other app has a
/// schedule-independent committed task structure.
macro_rules! conformance_suite {
    ($($test:ident => ($bench:ident, $fine:expr, $stable:expr)),* $(,)?) => {
        $(
            #[test]
            fn $test() {
                check(spec(BenchmarkId::$bench, $fine), $stable);
            }
        )*

        /// Every spec the rows above exercise.
        fn suite_specs() -> Vec<AppSpec> {
            vec![$(spec(BenchmarkId::$bench, $fine)),*]
        }
    };
}

conformance_suite! {
    bfs_conforms => (Bfs, false, true),
    sssp_conforms => (Sssp, false, false),
    astar_conforms => (Astar, false, false),
    color_conforms => (Color, false, true),
    des_conforms => (Des, false, true),
    nocsim_conforms => (Nocsim, false, true),
    silo_conforms => (Silo, false, true),
    genome_conforms => (Genome, false, true),
    kmeans_conforms => (Kmeans, false, true),
    maxflow_conforms => (Maxflow, false, true),
    triangle_conforms => (Triangle, false, true),
    kvstore_conforms => (Kvstore, false, true),
    stream_conforms => (Stream, false, false),
    pipeline_conforms => (Pipeline, false, true),
    hostile_conforms => (Hostile, false, true),
    bfs_fine_conforms => (Bfs, true, true),
    sssp_fine_conforms => (Sssp, true, true),
    astar_fine_conforms => (Astar, true, true),
    color_fine_conforms => (Color, true, true),
}

/// Contention-mode conformance shard: the full battery (validation,
/// bit-identical repeats, accounting invariants) must hold with per-link
/// queueing on, for a representative ordered graph app and the DES
/// workload whose abort traffic stresses the link model.
#[test]
fn contention_mode_bfs_conforms() {
    check_with_options(
        AppSpec::coarse(BenchmarkId::Bfs),
        ConformanceOptions {
            stable_commit_count: true,
            config: contention_config,
            ..ConformanceOptions::default()
        },
    );
}

#[test]
fn contention_mode_des_conforms() {
    check_with_options(
        AppSpec::coarse(BenchmarkId::Des),
        ConformanceOptions {
            stable_commit_count: true,
            config: contention_config,
            ..ConformanceOptions::default()
        },
    );
}

/// Contention-mode runs are byte-identical between `--jobs 1` and
/// `--jobs 8`, and actually accumulate queueing cycles (the analytic model
/// reports none).
#[test]
fn contention_runs_are_byte_identical_across_pool_jobs() {
    use swarm_repro::types::NocModel;
    let requests: Vec<RunRequest> = [BenchmarkId::Bfs, BenchmarkId::Des, BenchmarkId::Kvstore]
        .iter()
        .flat_map(|&bench| {
            Scheduler::ALL.iter().map(move |&scheduler| {
                RunRequest::new(AppSpec::coarse(bench), scheduler, 16, InputScale::Tiny)
                    .with_seed(SEED)
                    .with_noc(NocModel::Contention)
            })
        })
        .collect();
    let serial = Pool::new(1).run_matrix(&requests);
    let parallel = Pool::new(8).run_matrix(&requests);
    assert_eq!(serial, parallel, "a contention-mode matrix diverged from --jobs 1");
    assert!(
        serial.iter().all(|s| s.noc_queue_cycles > 0 && s.link_stats.is_some()),
        "contention-mode runs must accumulate link queueing statistics"
    );
}

#[test]
fn suite_covers_every_benchmark_and_fine_variant() {
    let specs = suite_specs();
    for bench in BenchmarkId::ALL {
        assert!(
            specs.contains(&AppSpec::coarse(bench)),
            "benchmark {bench} has no conformance row — add it to the table above"
        );
    }
    for bench in BenchmarkId::WITH_FINE_GRAIN {
        assert!(
            specs.contains(&AppSpec::fine(bench)),
            "fine-grain {bench} has no conformance row — add it to the table above"
        );
    }
    assert_eq!(specs.len(), BenchmarkId::ALL.len() + BenchmarkId::WITH_FINE_GRAIN.len());
}

#[test]
fn every_app_is_byte_identical_across_pool_jobs() {
    // The runner half of the conformance contract: for every app × scheduler
    // point, a multi-threaded matrix returns the same bytes as --jobs 1.
    let requests: Vec<RunRequest> = BenchmarkId::ALL
        .iter()
        .flat_map(|&bench| {
            Scheduler::ALL.iter().map(move |&scheduler| {
                RunRequest::new(AppSpec::coarse(bench), scheduler, 4, InputScale::Tiny)
                    .with_seed(SEED)
            })
        })
        .collect();
    let serial = Pool::new(1).run_matrix(&requests);
    let parallel = Pool::new(8).run_matrix(&requests);
    assert_eq!(serial, parallel, "a multi-threaded matrix diverged from --jobs 1");
}
