//! Property-based tests on the core invariants of the speculative substrate
//! and the spatial-hints mechanisms, using randomly generated task graphs
//! and load distributions.

use proptest::prelude::*;

use swarm_repro::hints::TileMap;
use swarm_repro::mem::{LruSet, SimMemory};
use swarm_repro::prelude::*;
use swarm_repro::sim::InitialTask;
use swarm_types::TileId;

/// A randomly generated "ledger" program: a set of add operations over a
/// small number of cells, with random timestamps and hints. Whatever the
/// schedule, the committed state must equal the serial (timestamp-ordered)
/// sum per cell.
#[derive(Debug, Clone)]
struct Ledger {
    ops: Vec<(u64, u64, u64)>, // (timestamp, cell, amount)
    cells: u64,
}

const LEDGER_BASE: u64 = 0x40_000;

impl SwarmApp for Ledger {
    fn name(&self) -> &str {
        "prop-ledger"
    }
    fn initial_tasks(&self) -> Vec<InitialTask> {
        self.ops
            .iter()
            .map(|&(ts, cell, amount)| {
                InitialTask::new(0, ts, Hint::value(cell), vec![cell, amount])
            })
            .collect()
    }
    fn run_task(&self, _fid: u16, _ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let cell = args[0];
        let amount = args[1];
        let addr = LEDGER_BASE + cell * 64;
        let value = ctx.read(addr);
        ctx.write(addr, value + amount);
    }
    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for cell in 0..self.cells {
            let expected: u64 =
                self.ops.iter().filter(|&&(_, c, _)| c == cell).map(|&(_, _, a)| a).sum();
            let got = mem.load(LEDGER_BASE + cell * 64);
            if got != expected {
                return Err(format!("cell {cell}: got {got}, expected {expected}"));
            }
        }
        Ok(())
    }
}

fn ledger_strategy() -> impl Strategy<Value = Ledger> {
    (2u64..6, 1usize..60).prop_flat_map(|(cells, n_ops)| {
        proptest::collection::vec((0u64..20, 0..cells, 1u64..100), n_ops)
            .prop_map(move |ops| Ledger { ops, cells })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serializability: any random conflicting program commits a state equal
    /// to its serial timestamp-order execution, under every scheduler.
    #[test]
    fn random_ledgers_are_serializable(ledger in ledger_strategy(), scheduler_idx in 0usize..4) {
        let scheduler = Scheduler::ALL[scheduler_idx];
        let cfg = SystemConfig::small();
        let mut engine = Engine::new(cfg.clone(), Box::new(ledger.clone()), scheduler.build(&cfg));
        let stats = engine.run().expect("ledger must serialize");
        prop_assert_eq!(stats.tasks_committed as usize, ledger.ops.len());
    }

    /// The undo log restores memory exactly for arbitrary write sequences.
    #[test]
    fn rollback_restores_arbitrary_write_sequences(
        initial in proptest::collection::vec((0u64..64, 0u64..1000), 0..32),
        speculative in proptest::collection::vec((0u64..64, 0u64..1000), 1..32),
    ) {
        let mut mem = SimMemory::new();
        for &(addr, value) in &initial {
            mem.store(addr * 8, value);
        }
        let snapshot: Vec<(u64, u64)> = (0..64).map(|a| (a * 8, mem.load(a * 8))).collect();
        let mut undo = Vec::new();
        for &(addr, value) in &speculative {
            undo.push(mem.store_logged(addr * 8, value));
        }
        mem.rollback_all(&mut undo);
        for (addr, value) in snapshot {
            prop_assert_eq!(mem.load(addr), value);
        }
    }

    /// The LRU set never exceeds its capacity and always contains the most
    /// recently inserted key.
    #[test]
    fn lru_set_respects_capacity(
        capacity in 1usize..32,
        keys in proptest::collection::vec(0u64..100, 1..200),
    ) {
        let mut lru = LruSet::new(capacity);
        for &k in &keys {
            lru.insert(k);
            prop_assert!(lru.len() <= capacity);
            prop_assert!(lru.contains(k));
        }
    }

    /// Rebalancing the tile map never loses or duplicates buckets and never
    /// increases the load spread (max - min weighted tile load).
    #[test]
    fn tile_map_rebalance_preserves_buckets_and_reduces_spread(
        weights in proptest::collection::vec(0u64..10_000, 64),
        correction in 1u8..=100,
    ) {
        let num_tiles = 8;
        let mut map = TileMap::new(64, num_tiles);
        let load = |map: &TileMap| -> Vec<u64> {
            (0..num_tiles).map(|t| {
                map.buckets_of(TileId(t as u32)).iter().map(|&b| weights[b as usize]).sum()
            }).collect()
        };
        let before = load(&map);
        let spread_before = before.iter().max().unwrap() - before.iter().min().unwrap();
        map.rebalance(&weights, correction);
        // Every bucket still maps to exactly one valid tile.
        let mut seen = 0usize;
        for t in 0..num_tiles {
            seen += map.buckets_of(TileId(t as u32)).len();
        }
        prop_assert_eq!(seen, 64);
        let after = load(&map);
        let spread_after = after.iter().max().unwrap() - after.iter().min().unwrap();
        prop_assert!(spread_after <= spread_before,
            "rebalance made the spread worse: {} -> {}", spread_before, spread_after);
    }

    /// Hints map deterministically: the same hint always reaches the same
    /// tile and bucket, and every tile is reachable.
    #[test]
    fn hint_mapping_is_deterministic_and_covers_tiles(hints in proptest::collection::vec(any::<u64>(), 1..500)) {
        let cfg = SystemConfig::small();
        let mut a = Scheduler::Hints.build(&cfg);
        let mut b = Scheduler::Hints.build(&cfg);
        for &h in &hints {
            let hint = Hint::value(h);
            prop_assert_eq!(
                a.map_task(hint, None, cfg.num_tiles()),
                b.map_task(hint, None, cfg.num_tiles())
            );
        }
    }
}
