//! Property-based tests on the core invariants of the speculative substrate
//! and the spatial-hints mechanisms, using randomly generated task graphs
//! and load distributions.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use swarm_repro::apps::kvstore::Zipfian;
use swarm_repro::hints::TileMap;
use swarm_repro::mem::{AccessKind, CacheModel, LruSet, SimMemory};
use swarm_repro::prelude::*;
use swarm_repro::sim::{InitialTask, LineTable, TimingWheel, WHEEL_SLOTS};
use swarm_types::{CacheConfig, CoreId, LineAddr, TaskId, TileId};

/// The seed (PR 1) `HashMap`-based memory-system structures, kept verbatim as
/// reference models: the flat/open-addressed rewrites must be observationally
/// identical, and these cross-checks pin that under randomized workloads.
mod seed_reference {
    use std::collections::HashMap;

    use swarm_types::{CacheConfig, CoreId, LineAddr, TileId};

    const NONE: u64 = u64::MAX;

    /// The seed `LruSet`: a doubly-linked list threaded through a `HashMap`.
    #[derive(Debug, Clone)]
    pub struct SeedLruSet {
        capacity: usize,
        links: HashMap<u64, (u64, u64)>,
        head: u64,
        tail: u64,
    }

    impl SeedLruSet {
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "LruSet capacity must be positive");
            SeedLruSet { capacity, links: HashMap::new(), head: NONE, tail: NONE }
        }

        pub fn len(&self) -> usize {
            self.links.len()
        }

        pub fn contains(&self, key: u64) -> bool {
            self.links.contains_key(&key)
        }

        fn unlink(&mut self, key: u64) {
            let (prev, next) = self.links[&key];
            if prev != NONE {
                self.links.get_mut(&prev).expect("prev must exist").1 = next;
            } else {
                self.head = next;
            }
            if next != NONE {
                self.links.get_mut(&next).expect("next must exist").0 = prev;
            } else {
                self.tail = prev;
            }
        }

        fn push_front(&mut self, key: u64) {
            let old_head = self.head;
            self.links.insert(key, (NONE, old_head));
            if old_head != NONE {
                self.links.get_mut(&old_head).expect("head must exist").0 = key;
            }
            self.head = key;
            if self.tail == NONE {
                self.tail = key;
            }
        }

        pub fn touch(&mut self, key: u64) -> bool {
            if !self.links.contains_key(&key) {
                return false;
            }
            if self.head == key {
                return true;
            }
            self.unlink(key);
            self.push_front(key);
            true
        }

        pub fn insert(&mut self, key: u64) -> Option<u64> {
            assert_ne!(key, NONE);
            if self.touch(key) {
                return None;
            }
            let mut evicted = None;
            if self.links.len() >= self.capacity {
                let victim = self.tail;
                self.unlink(victim);
                self.links.remove(&victim);
                evicted = Some(victim);
            }
            self.push_front(key);
            evicted
        }

        pub fn remove(&mut self, key: u64) -> bool {
            if !self.links.contains_key(&key) {
                return false;
            }
            self.unlink(key);
            self.links.remove(&key);
            true
        }
    }

    #[derive(Debug, Clone, Default)]
    struct LineDir {
        sharers: u64,
        owner: Option<TileId>,
        in_l3: bool,
    }

    /// The seed cache model: `SeedLruSet` arrays plus a `HashMap` directory.
    /// Only valid for <= 64 tiles (the seed's sharer-mask limit).
    #[derive(Debug, Clone)]
    pub struct SeedCacheModel {
        cfg: CacheConfig,
        cores_per_tile: u32,
        num_tiles: usize,
        l1: Vec<SeedLruSet>,
        l2: Vec<SeedLruSet>,
        l3: Vec<SeedLruSet>,
        dir: HashMap<LineAddr, LineDir>,
        pub hits: (u64, u64, u64, u64, u64),
    }

    /// What the seed `access` reported, field for field.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SeedOutcome {
        pub level: swarm_repro::mem::HitLevel,
        pub base_latency: u64,
        pub invalidated: Vec<TileId>,
        pub remote: bool,
    }

    impl SeedCacheModel {
        pub fn new(cfg: CacheConfig, num_tiles: usize, cores_per_tile: u32) -> Self {
            assert!(num_tiles <= 64);
            let num_cores = num_tiles * cores_per_tile as usize;
            SeedCacheModel {
                l1: (0..num_cores).map(|_| SeedLruSet::new(cfg.l1_lines.max(1))).collect(),
                l2: (0..num_tiles).map(|_| SeedLruSet::new(cfg.l2_lines.max(1))).collect(),
                l3: (0..num_tiles).map(|_| SeedLruSet::new(cfg.l3_lines_per_tile.max(1))).collect(),
                dir: HashMap::new(),
                cfg,
                cores_per_tile,
                num_tiles,
                hits: (0, 0, 0, 0, 0),
            }
        }

        fn sharer_bit(tile: TileId) -> u64 {
            1u64 << (tile.index() as u64 % 64)
        }

        fn sharer_tiles(&self, mask: u64, exclude: TileId) -> Vec<TileId> {
            (0..self.num_tiles.min(64))
                .filter(|&t| t != exclude.index() && (mask >> t) & 1 == 1)
                .map(|t| TileId(t as u32))
                .collect()
        }

        fn dir_first_other_sharer(&self, mask: u64, exclude: TileId) -> Option<TileId> {
            (0..self.num_tiles.min(64))
                .find(|&t| t != exclude.index() && (mask >> t) & 1 == 1)
                .map(|t| TileId(t as u32))
        }

        pub fn access(&mut self, core: CoreId, line: LineAddr, write: bool) -> SeedOutcome {
            use swarm_repro::mem::HitLevel;
            let tile = core.tile(self.cores_per_tile);
            let key = line.0;

            let l1_hit = self.l1[core.index()].touch(key);
            let l2_hit = l1_hit || self.l2[tile.index()].touch(key);

            let dir_snapshot = self.dir.get(&line).cloned().unwrap_or_default();
            let home = TileId(swarm_types::hash_to_range(line.0, self.num_tiles) as u32);

            let (level, base_latency, remote) = if l1_hit {
                self.hits.0 += 1;
                (HitLevel::L1, self.cfg.l1_latency, false)
            } else if l2_hit {
                self.hits.1 += 1;
                (HitLevel::L2, self.cfg.l1_latency + self.cfg.l2_latency, false)
            } else {
                let remote_holder = dir_snapshot
                    .owner
                    .filter(|o| *o != tile)
                    .or_else(|| self.dir_first_other_sharer(dir_snapshot.sharers, tile));
                if let Some(owner) = remote_holder {
                    self.hits.2 += 1;
                    (
                        HitLevel::RemoteL2 { owner },
                        self.cfg.l1_latency + self.cfg.l2_latency * 2 + self.cfg.l3_latency,
                        true,
                    )
                } else if dir_snapshot.in_l3 && self.l3[home.index()].contains(key) {
                    self.hits.3 += 1;
                    (
                        HitLevel::L3 { home },
                        self.cfg.l1_latency + self.cfg.l2_latency + self.cfg.l3_latency,
                        true,
                    )
                } else {
                    self.hits.4 += 1;
                    (
                        HitLevel::Memory { home },
                        self.cfg.l1_latency
                            + self.cfg.l2_latency
                            + self.cfg.l3_latency
                            + self.cfg.mem_latency,
                        true,
                    )
                }
            };

            let mut invalidated = Vec::new();
            if write {
                let others = self.sharer_tiles(dir_snapshot.sharers, tile);
                for other in &others {
                    self.l2[other.index()].remove(key);
                    let first_core = other.index() * self.cores_per_tile as usize;
                    for c in first_core..first_core + self.cores_per_tile as usize {
                        self.l1[c].remove(key);
                    }
                }
                invalidated = others;
            }

            let dir = self.dir.entry(line).or_default();
            if write {
                dir.sharers = Self::sharer_bit(tile);
                dir.owner = Some(tile);
            } else {
                dir.sharers |= Self::sharer_bit(tile);
                if dir.owner != Some(tile) {
                    dir.owner = None;
                }
            }
            dir.in_l3 = true;
            self.l3[home.index()].insert(key);
            self.l2[tile.index()].insert(key);
            self.l1[core.index()].insert(key);

            SeedOutcome { level, base_latency, invalidated, remote }
        }

        pub fn flush_line(&mut self, line: LineAddr) {
            let key = line.0;
            for l1 in &mut self.l1 {
                l1.remove(key);
            }
            for l2 in &mut self.l2 {
                l2.remove(key);
            }
            for l3 in &mut self.l3 {
                l3.remove(key);
            }
            self.dir.remove(&line);
        }
    }

    /// The seed engine's event queue: a min-heap over `(cycle, seq, item)`
    /// where `seq` is a global schedule counter, so equal-cycle events pop
    /// in schedule (FIFO) order. `TimingWheel` must reproduce this total
    /// order exactly.
    pub struct SeedEventQueue<T> {
        heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, T)>>,
        seq: u64,
    }

    impl<T: Ord + Copy> SeedEventQueue<T> {
        pub fn new() -> Self {
            SeedEventQueue { heap: std::collections::BinaryHeap::new(), seq: 0 }
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }

        pub fn schedule(&mut self, at: u64, item: T) {
            self.heap.push(std::cmp::Reverse((at, self.seq, item)));
            self.seq += 1;
        }

        pub fn pop(&mut self) -> Option<(u64, T)> {
            self.heap.pop().map(|std::cmp::Reverse((at, _, item))| (at, item))
        }
    }
}

/// A randomly generated "ledger" program: a set of add operations over a
/// small number of cells, with random timestamps and hints. Whatever the
/// schedule, the committed state must equal the serial (timestamp-ordered)
/// sum per cell.
#[derive(Debug, Clone)]
struct Ledger {
    ops: Vec<(u64, u64, u64)>, // (timestamp, cell, amount)
    cells: u64,
}

const LEDGER_BASE: u64 = 0x40_000;

impl SwarmApp for Ledger {
    fn name(&self) -> &str {
        "prop-ledger"
    }
    fn initial_tasks(&self) -> Vec<InitialTask> {
        self.ops
            .iter()
            .map(|&(ts, cell, amount)| {
                InitialTask::new(0, ts, Hint::value(cell), vec![cell, amount])
            })
            .collect()
    }
    fn run_task(&self, _fid: u16, _ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let cell = args[0];
        let amount = args[1];
        let addr = LEDGER_BASE + cell * 64;
        let value = ctx.read(addr);
        ctx.write(addr, value + amount);
    }
    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for cell in 0..self.cells {
            let expected: u64 =
                self.ops.iter().filter(|&&(_, c, _)| c == cell).map(|&(_, _, a)| a).sum();
            let got = mem.load(LEDGER_BASE + cell * 64);
            if got != expected {
                return Err(format!("cell {cell}: got {got}, expected {expected}"));
            }
        }
        Ok(())
    }
}

fn ledger_strategy() -> impl Strategy<Value = Ledger> {
    (2u64..6, 1usize..60).prop_flat_map(|(cells, n_ops)| {
        proptest::collection::vec((0u64..20, 0..cells, 1u64..100), n_ops)
            .prop_map(move |ops| Ledger { ops, cells })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serializability: any random conflicting program commits a state equal
    /// to its serial timestamp-order execution, under every scheduler.
    #[test]
    fn random_ledgers_are_serializable(ledger in ledger_strategy(), scheduler_idx in 0usize..4) {
        let scheduler = Scheduler::ALL[scheduler_idx];
        let mut engine = Sim::builder()
            .config(SystemConfig::small())
            .app(ledger.clone())
            .scheduler(scheduler)
            .build()
            .expect("a valid simulation description");
        let stats = engine.run().expect("ledger must serialize");
        prop_assert_eq!(stats.tasks_committed as usize, ledger.ops.len());
    }

    /// The undo log restores memory exactly for arbitrary write sequences.
    #[test]
    fn rollback_restores_arbitrary_write_sequences(
        initial in proptest::collection::vec((0u64..64, 0u64..1000), 0..32),
        speculative in proptest::collection::vec((0u64..64, 0u64..1000), 1..32),
    ) {
        let mut mem = SimMemory::new();
        for &(addr, value) in &initial {
            mem.store(addr * 8, value);
        }
        let snapshot: Vec<(u64, u64)> = (0..64).map(|a| (a * 8, mem.load(a * 8))).collect();
        let mut undo = Vec::new();
        for &(addr, value) in &speculative {
            undo.push(mem.store_logged(addr * 8, value));
        }
        mem.rollback_all(&mut undo);
        for (addr, value) in snapshot {
            prop_assert_eq!(mem.load(addr), value);
        }
    }

    /// The LRU set never exceeds its capacity and always contains the most
    /// recently inserted key.
    #[test]
    fn lru_set_respects_capacity(
        capacity in 1usize..32,
        keys in proptest::collection::vec(0u64..100, 1..200),
    ) {
        let mut lru = LruSet::new(capacity);
        for &k in &keys {
            lru.insert(k);
            prop_assert!(lru.len() <= capacity);
            prop_assert!(lru.contains(k));
        }
    }

    /// Rebalancing the tile map never loses or duplicates buckets and never
    /// increases the load spread (max - min weighted tile load).
    #[test]
    fn tile_map_rebalance_preserves_buckets_and_reduces_spread(
        weights in proptest::collection::vec(0u64..10_000, 64),
        correction in 1u8..=100,
    ) {
        let num_tiles = 8;
        let mut map = TileMap::new(64, num_tiles);
        let load = |map: &TileMap| -> Vec<u64> {
            (0..num_tiles).map(|t| {
                map.buckets_of(TileId(t as u32)).iter().map(|&b| weights[b as usize]).sum()
            }).collect()
        };
        let before = load(&map);
        let spread_before = before.iter().max().unwrap() - before.iter().min().unwrap();
        map.rebalance(&weights, correction);
        // Every bucket still maps to exactly one valid tile.
        let mut seen = 0usize;
        for t in 0..num_tiles {
            seen += map.buckets_of(TileId(t as u32)).len();
        }
        prop_assert_eq!(seen, 64);
        let after = load(&map);
        let spread_after = after.iter().max().unwrap() - after.iter().min().unwrap();
        prop_assert!(spread_after <= spread_before,
            "rebalance made the spread worse: {} -> {}", spread_before, spread_after);
    }

    /// The slab-backed `LruSet` is observationally identical to the seed
    /// `HashMap`-threaded implementation under random insert / touch /
    /// remove interleavings, including eviction victims and order.
    #[test]
    fn lru_set_matches_seed_hashmap_reference(
        capacity in 1usize..24,
        ops in proptest::collection::vec((0u64..48, 0u8..8), 1..400),
    ) {
        let mut new_impl = LruSet::new(capacity);
        let mut seed = seed_reference::SeedLruSet::new(capacity);
        for (step, &(key, op)) in ops.iter().enumerate() {
            match op {
                // Bias towards inserts: they exercise eviction, the only
                // place the two recency structures can silently diverge.
                0..=4 => prop_assert_eq!(
                    new_impl.insert(key),
                    seed.insert(key),
                    "insert({}) diverged at step {}", key, step
                ),
                5 | 6 => prop_assert_eq!(
                    new_impl.touch(key),
                    seed.touch(key),
                    "touch({}) diverged at step {}", key, step
                ),
                _ => prop_assert_eq!(
                    new_impl.remove(key),
                    seed.remove(key),
                    "remove({}) diverged at step {}", key, step
                ),
            }
            prop_assert_eq!(new_impl.len(), seed.len(), "len diverged at step {}", step);
            prop_assert_eq!(
                new_impl.contains(key),
                seed.contains(key),
                "contains({}) diverged at step {}", key, step
            );
        }
    }

    /// The open-addressed directory + flat caches are observationally
    /// identical to the seed `HashMap` cache model under random read /
    /// write / flush interleavings: same hit levels, latencies,
    /// invalidation lists (order included) and hit counters.
    #[test]
    fn cache_model_matches_seed_hashmap_reference(
        machine_idx in 0usize..4,
        ops in proptest::collection::vec((any::<u32>(), 0u64..40, 0u8..8), 1..300),
    ) {
        let (num_tiles, cores_per_tile) = [(1usize, 1u32), (4, 1), (4, 4), (16, 2)][machine_idx];
        // Tiny capacities so the random workload constantly evicts.
        let cfg = CacheConfig {
            l1_lines: 2,
            l2_lines: 4,
            l3_lines_per_tile: 8,
            ..CacheConfig::default()
        };
        let num_cores = num_tiles * cores_per_tile as usize;
        let mut new_impl = CacheModel::new(cfg.clone(), num_tiles, cores_per_tile);
        let mut seed = seed_reference::SeedCacheModel::new(cfg, num_tiles, cores_per_tile);
        for (step, &(core_sel, line, op)) in ops.iter().enumerate() {
            let core = CoreId(core_sel % num_cores as u32);
            let line = LineAddr(line);
            if op == 7 {
                new_impl.flush_line(line);
                seed.flush_line(line);
                continue;
            }
            let write = op >= 4;
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let got = new_impl.access(core, line, kind);
            let want = seed.access(core, line, write);
            prop_assert_eq!(got.level, want.level, "hit level diverged at step {}", step);
            prop_assert_eq!(
                got.base_latency, want.base_latency,
                "latency diverged at step {}", step
            );
            prop_assert_eq!(got.remote, want.remote, "remote flag diverged at step {}", step);
            prop_assert_eq!(
                got.invalidated.as_slice(),
                want.invalidated.as_slice(),
                "invalidations diverged at step {}", step
            );
        }
        prop_assert_eq!(new_impl.hit_counters(), seed.hits, "hit counters diverged");
    }

    /// The Zipfian sampler is a pure function of its seed: equal seeds give
    /// equal rank sequences, for any distribution size.
    #[test]
    fn zipfian_is_seeded_deterministic(seed in any::<u64>(), num_ranks in 1usize..200) {
        let zipf = Zipfian::new(num_ranks);
        let mut a = SmallRng::seed_from_u64(seed);
        let mut b = SmallRng::seed_from_u64(seed);
        for draw in 0..200 {
            let (ra, rb) = (zipf.sample(&mut a), zipf.sample(&mut b));
            prop_assert_eq!(ra, rb, "draw {} diverged", draw);
            prop_assert!(ra < num_ranks as u64, "rank {} out of range", ra);
        }
    }

    /// Empirical rank frequencies track the harmonic law `p(r) ∝ 1/(r+1)`
    /// within a generous sampling tolerance, for any seed.
    #[test]
    fn zipfian_rank_frequencies_follow_the_harmonic_law(seed in any::<u64>()) {
        const RANKS: usize = 32;
        const SAMPLES: u64 = 30_000;
        let zipf = Zipfian::new(RANKS);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut freq = [0u64; RANKS];
        for _ in 0..SAMPLES {
            freq[zipf.sample(&mut rng) as usize] += 1;
        }
        let harmonic: f64 = (1..=RANKS).map(|r| 1.0 / r as f64).sum();
        for (r, &got) in freq.iter().enumerate() {
            let expected = SAMPLES as f64 / ((r + 1) as f64 * harmonic);
            let tolerance = expected * 0.25 + 30.0; // ~6 sigma at 30k draws
            prop_assert!(
                (got as f64 - expected).abs() < tolerance,
                "rank {} drawn {} times, expected {:.0} ± {:.0}",
                r, got, expected, tolerance
            );
        }
    }

    /// At large sample counts every rank is drawn at least once — the tail
    /// is thin but never silently truncated.
    #[test]
    fn zipfian_covers_the_full_rank_range(seed in any::<u64>()) {
        const RANKS: usize = 48;
        let zipf = Zipfian::new(RANKS);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut seen = [false; RANKS];
        for _ in 0..30_000 {
            seen[zipf.sample(&mut rng) as usize] = true;
        }
        let missing: Vec<usize> =
            seen.iter().enumerate().filter(|(_, &s)| !s).map(|(r, _)| r).collect();
        prop_assert!(missing.is_empty(), "ranks never drawn: {:?}", missing);
    }

    /// The open-addressed `LineTable` (the speculative line-access table
    /// ported onto `swarm_mem::OpenTable`) is observationally identical to
    /// the former `HashMap` representation under random register /
    /// unregister / remove interleavings, mirroring exactly how
    /// `swarm_sim::state` drives it.
    #[test]
    fn line_table_matches_hashmap_reference(
        ops in proptest::collection::vec((0u64..48, 0u64..16, 0u8..8), 1..400),
    ) {
        use std::collections::HashMap;
        type Key = (u64, TaskId);
        type RefAccessors = (Vec<Key>, Vec<Key>);
        let mut table = LineTable::new();
        let mut reference: HashMap<u64, RefAccessors> = HashMap::new();
        for (step, &(line_raw, task_raw, op)) in ops.iter().enumerate() {
            let line = LineAddr(line_raw);
            let task = TaskId(task_raw);
            // The table stores full commit-order keys; derive a stable ts.
            let key: Key = (task_raw % 5, task);
            match op {
                // Register a reader (how register_access_sets inserts).
                0..=2 => {
                    let acc = table.entry_or_default(line);
                    if !acc.readers.contains(&key) {
                        acc.readers.push(key);
                    }
                    let entry = reference.entry(line_raw).or_default();
                    if !entry.0.contains(&key) {
                        entry.0.push(key);
                    }
                }
                // Register a writer.
                3..=5 => {
                    let acc = table.entry_or_default(line);
                    if !acc.writers.contains(&key) {
                        acc.writers.push(key);
                    }
                    let entry = reference.entry(line_raw).or_default();
                    if !entry.1.contains(&key) {
                        entry.1.push(key);
                    }
                }
                // Unregister the task, dropping emptied lines (how
                // unregister_access_sets cleans up).
                6 => {
                    if let Some(acc) = table.get_mut(line) {
                        acc.readers.retain(|&k| k.1 != task);
                        acc.writers.retain(|&k| k.1 != task);
                        if acc.is_empty() {
                            table.remove(line);
                        }
                    }
                    if let Some(entry) = reference.get_mut(&line_raw) {
                        entry.0.retain(|&k| k.1 != task);
                        entry.1.retain(|&k| k.1 != task);
                        if entry.0.is_empty() && entry.1.is_empty() {
                            reference.remove(&line_raw);
                        }
                    }
                }
                // Drop the whole line (cache-flush style).
                _ => {
                    table.remove(line);
                    reference.remove(&line_raw);
                }
            }
            let got = table.get(line).map(|a| (a.readers.clone(), a.writers.clone()));
            let want = reference.get(&line_raw).cloned();
            prop_assert_eq!(got, want, "accessors of line {} diverged at step {}", line_raw, step);
            prop_assert_eq!(table.len(), reference.len(), "len diverged at step {}", step);
        }
    }

    /// The timing-wheel event queue reproduces the seed `BinaryHeap`'s
    /// total order exactly — ascending cycle, FIFO within a cycle — under
    /// randomized schedule/pop interleavings that stress all three of its
    /// regimes: same-cycle bursts, in-ring scheduling, and far-future
    /// events that round-trip through the overflow map and wrap the ring.
    #[test]
    fn timing_wheel_matches_seed_binary_heap(
        ops in proptest::collection::vec((0u8..6, 0u64..8 * WHEEL_SLOTS as u64), 1..500),
    ) {
        let mut wheel = TimingWheel::new();
        let mut seed = seed_reference::SeedEventQueue::new();
        let mut now = 0u64;
        let mut next_item = 0u32;
        for (step, &(mode, raw)) in ops.iter().enumerate() {
            if mode == 0 {
                let want = seed.pop();
                if let Some((at, _)) = want {
                    now = at;
                }
                prop_assert_eq!(wheel.pop(), want, "pop diverged at step {}", step);
                prop_assert_eq!(wheel.len(), seed.len());
            } else {
                let at = match mode {
                    // Same-cycle / near-cycle bursts: FIFO tie-breaking.
                    1 | 2 => now + raw % 8,
                    // Within the ring window.
                    3 | 4 => now + raw % WHEEL_SLOTS as u64,
                    // Far future: overflow map, then ring wraparound on
                    // migration.
                    _ => now + raw,
                };
                wheel.schedule(at, next_item);
                seed.schedule(at, next_item);
                next_item += 1;
            }
        }
        // Drain both completely: the tail order must agree too.
        loop {
            let want = seed.pop();
            prop_assert_eq!(wheel.pop(), want, "drain diverged");
            if want.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Hints map deterministically: the same hint always reaches the same
    /// tile and bucket, and every tile is reachable.
    #[test]
    fn hint_mapping_is_deterministic_and_covers_tiles(hints in proptest::collection::vec(any::<u64>(), 1..500)) {
        let cfg = SystemConfig::small();
        let mut a = Scheduler::Hints.build(&cfg);
        let mut b = Scheduler::Hints.build(&cfg);
        for &h in &hints {
            let hint = Hint::value(h);
            prop_assert_eq!(
                a.map_task(hint, None, cfg.num_tiles()),
                b.map_task(hint, None, cfg.num_tiles())
            );
        }
    }

    /// The mesh routing walk matches a plain div/mod X-then-Y reference
    /// hop for hop at every width — non-power-of-two widths take the
    /// divide path of `Mesh::split`, power-of-two widths the shift/mask
    /// fast path, and both must produce the identical dimension-ordered
    /// link sequence — and its length always equals `Mesh::hops`.
    #[test]
    fn mesh_route_matches_divide_reference_hop_for_hop(
        width in 1u32..10,
        height in 1u32..10,
        from_seed in any::<u32>(),
        to_seed in any::<u32>(),
    ) {
        use swarm_repro::noc::{Mesh, LINKS_PER_TILE};
        let mesh = Mesh::new(width, height, swarm_types::NocConfig::default());
        let tiles = width * height;
        let from = TileId(from_seed % tiles);
        let to = TileId(to_seed % tiles);
        // Reference walk: X then Y, coordinates split with plain div/mod.
        let mut expect = Vec::new();
        let (mut x, mut y) = (from.0 % width, from.0 / width);
        let (tx, ty) = (to.0 % width, to.0 / width);
        while x != tx {
            let dir = if x < tx { 0 } else { 1 };
            expect.push((y * width + x) * LINKS_PER_TILE as u32 + dir);
            if x < tx { x += 1 } else { x -= 1 }
        }
        while y != ty {
            let dir = if y < ty { 2 } else { 3 };
            expect.push((y * width + x) * LINKS_PER_TILE as u32 + dir);
            if y < ty { y += 1 } else { y -= 1 }
        }
        let mut got = Vec::new();
        mesh.route_links(from, to, |l| got.push(l));
        prop_assert_eq!(&got, &expect, "width {} height {} {:?}->{:?}", width, height, from, to);
        prop_assert_eq!(got.len() as u64, mesh.hops(from, to));
        for &link in &got {
            prop_assert!((link as usize) < mesh.num_links());
            let (src, _) = mesh.link_endpoints(link);
            prop_assert!(src.index() < mesh.num_tiles());
        }
    }
}
