//! The observer interface sees everything the built-in statistics see.
//!
//! `RunStats` is accumulated by `swarm_sim::StatsObserver`, which consumes
//! the same event stream any custom observer attached through
//! `SimBuilder::observer` receives. These tests prove the equivalence on a
//! real Table I benchmark: a hand-written observer must reconstruct the
//! built-in commit/abort counts exactly, so future metrics (e.g. NoC
//! contention counters) can attach without touching the engine.

use std::cell::RefCell;
use std::rc::Rc;

use swarm_repro::prelude::*;

/// A from-scratch reimplementation of the headline counters, fed only by
/// observer hooks.
#[derive(Default)]
struct CountingObserver {
    commits: u64,
    committed_cycles: u64,
    aborted_executions: u64,
    aborted_cycles: u64,
    cascade_members: u64,
    dequeues: u64,
    flit_hops: u64,
}

impl SimObserver for CountingObserver {
    fn on_dequeue(&mut self, _event: &DequeueEvent) {
        self.dequeues += 1;
    }
    fn on_commit(&mut self, event: &CommitEvent<'_>) {
        self.commits += 1;
        self.committed_cycles += event.cycles;
    }
    fn on_abort(&mut self, event: &AbortEvent) {
        self.cascade_members += 1;
        if event.executed {
            self.aborted_executions += 1;
            self.aborted_cycles += event.cycles;
        }
    }
    fn on_network_message(&mut self, event: &NetworkEvent) {
        self.flit_hops += event.hops * event.flits;
    }
}

fn run_with_observer(
    bench: BenchmarkId,
    scheduler: Scheduler,
) -> (RunStats, Rc<RefCell<CountingObserver>>) {
    let counter = Rc::new(RefCell::new(CountingObserver::default()));
    let mut engine = Sim::builder()
        .cores(16)
        .app_boxed(AppSpec::coarse(bench).build(InputScale::Tiny, 99))
        .scheduler(scheduler)
        .observer(Rc::clone(&counter))
        .build()
        .expect("a valid simulation description");
    let stats = engine.run().expect("run must validate");
    (stats, counter)
}

#[test]
fn custom_observer_sees_the_same_commit_and_abort_counts_as_stats() {
    // des under Random at 16 cores: a Table I app with guaranteed
    // speculation waste, so both counters are exercised non-trivially.
    let (stats, counter) = run_with_observer(BenchmarkId::Des, Scheduler::Random);
    let counter = counter.borrow();
    assert!(stats.tasks_committed > 0 && stats.tasks_aborted > 0, "want real traffic: {stats:?}");
    assert_eq!(counter.commits, stats.tasks_committed);
    assert_eq!(counter.committed_cycles, stats.breakdown.committed);
    assert_eq!(counter.aborted_executions, stats.tasks_aborted);
    assert_eq!(counter.aborted_cycles, stats.breakdown.aborted);
    assert!(
        counter.cascade_members >= counter.aborted_executions,
        "cascades may include never-executed members"
    );
    assert_eq!(counter.flit_hops, stats.traffic.total());
    // Every committed or aborted-after-running execution was dispatched.
    assert!(counter.dequeues >= stats.tasks_committed);
}

#[test]
fn observer_counts_match_across_schedulers() {
    for scheduler in [Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
        let (stats, counter) = run_with_observer(BenchmarkId::Sssp, scheduler);
        let counter = counter.borrow();
        assert_eq!(counter.commits, stats.tasks_committed, "{scheduler}");
        assert_eq!(counter.aborted_executions, stats.tasks_aborted, "{scheduler}");
        assert_eq!(counter.flit_hops, stats.traffic.total(), "{scheduler}");
    }
}

#[test]
fn attaching_an_observer_does_not_change_the_results() {
    // Observers are read-only taps: a run with one attached must produce
    // bit-identical statistics to a run without.
    let (with_observer, _counter) = run_with_observer(BenchmarkId::Kvstore, Scheduler::Hints);
    let mut engine = Sim::builder()
        .cores(16)
        .app_boxed(AppSpec::coarse(BenchmarkId::Kvstore).build(InputScale::Tiny, 99))
        .scheduler(Scheduler::Hints)
        .build()
        .expect("a valid simulation description");
    let without_observer = engine.run().expect("run must validate");
    assert_eq!(with_observer, without_observer);
}
