//! Scheduler-behaviour integration tests: observable consequences of the
//! mapping policies when driven through the full engine (locality of
//! same-hint tasks, serialization, stealing, and load-balancer activity).

use swarm_repro::prelude::*;
use swarm_repro::sim::InitialTask;

/// A workload whose tasks declare exactly which "object" they touch, so a
/// test can check where the scheduler put them by looking at per-tile
/// committed cycles.
struct ObjectWorkload {
    objects: u64,
    tasks_per_object: u64,
}

const OBJ_BASE: u64 = 0x9_0000;

impl SwarmApp for ObjectWorkload {
    fn name(&self) -> &str {
        "object-workload"
    }
    fn initial_tasks(&self) -> Vec<InitialTask> {
        let mut tasks = Vec::new();
        for o in 0..self.objects {
            for i in 0..self.tasks_per_object {
                tasks.push(InitialTask::new(0, i, Hint::value(o), vec![o]));
            }
        }
        tasks
    }
    fn run_task(&self, _fid: u16, _ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let o = args[0];
        let addr = OBJ_BASE + o * 64;
        let v = ctx.read(addr);
        ctx.compute(50);
        ctx.write(addr, v + 1);
    }
    fn validate(&self, mem: &swarm_repro::mem::SimMemory) -> Result<(), String> {
        for o in 0..self.objects {
            if mem.load(OBJ_BASE + o * 64) != self.tasks_per_object {
                return Err(format!("object {o} has the wrong count"));
            }
        }
        Ok(())
    }
}

fn run_objects(scheduler: Scheduler, objects: u64, tasks_per_object: u64) -> RunStats {
    let mut engine = Sim::builder()
        .cores(16)
        .app(ObjectWorkload { objects, tasks_per_object })
        .scheduler(scheduler)
        .build()
        .expect("a valid simulation description");
    engine.run().expect("object workload must validate")
}

#[test]
fn hints_localize_same_object_tasks_to_few_tiles() {
    // With 2 hot objects and hint-based mapping, at most 2 tiles should do
    // essentially all the committed work; Random spreads it over all 4.
    let hints = run_objects(Scheduler::Hints, 2, 32);
    let random = run_objects(Scheduler::Random, 2, 32);
    let busy_tiles =
        |stats: &RunStats| stats.committed_cycles_per_tile.iter().filter(|&&c| c > 0).count();
    assert!(busy_tiles(&hints) <= 2, "hints used {} tiles for 2 objects", busy_tiles(&hints));
    assert!(busy_tiles(&random) >= 3, "random only used {} tiles", busy_tiles(&random));
}

#[test]
fn hints_eliminate_aborts_that_random_suffers_on_hot_objects() {
    let hints = run_objects(Scheduler::Hints, 4, 24);
    let random = run_objects(Scheduler::Random, 4, 24);
    assert!(random.tasks_aborted > 0, "random should conflict on hot objects");
    assert!(
        hints.tasks_aborted * 2 <= random.tasks_aborted,
        "same-hint serialization should cut aborts at least in half ({} vs {})",
        hints.tasks_aborted,
        random.tasks_aborted
    );
}

#[test]
fn stealing_keeps_cores_fed_on_an_imbalanced_spawn_tree() {
    // All initial work lands on one tile (hint-less, enqueued from `main`),
    // so without stealing most tiles idle; the Stealing scheduler must spread
    // it and finish sooner than a pinned-to-one-tile schedule would.
    struct SkewedSpawner;
    impl SwarmApp for SkewedSpawner {
        fn name(&self) -> &str {
            "skewed-spawner"
        }
        fn initial_tasks(&self) -> Vec<InitialTask> {
            vec![InitialTask::new(0, 0, Hint::value(0), vec![])]
        }
        fn run_task(&self, fid: u16, ts: u64, _args: &[u64], ctx: &mut TaskCtx<'_>) {
            if fid == 0 {
                for i in 0..120u64 {
                    ctx.enqueue(1, ts + 1 + i, Hint::Same, vec![i]);
                }
            } else {
                ctx.compute(400);
            }
        }
        fn num_task_fns(&self) -> usize {
            2
        }
    }
    let run_with = |scheduler: Scheduler| {
        let mut engine = Sim::builder()
            .cores(16)
            .app(SkewedSpawner)
            .scheduler(scheduler)
            .build()
            .expect("a valid simulation description");
        engine.run().expect("spawner must run")
    };
    let stealing = run_with(Scheduler::Stealing);
    let hints = run_with(Scheduler::Hints);
    // SAMEHINT children all inherit hint 0, so Hints piles them on one tile;
    // Stealing spreads them and must finish substantially faster.
    assert!(
        stealing.runtime_cycles * 2 < hints.runtime_cycles,
        "stealing ({}) should easily beat a single hot tile ({})",
        stealing.runtime_cycles,
        hints.runtime_cycles
    );
}

#[test]
fn hostile_hint_aliasing_degrades_hints_far_below_stealing() {
    // The adversarial generator the synthetic `hostile` family registers as
    // a benchmark: every task carries the *same* hint over disjoint data.
    // Spatial hints collapse all of it onto one tile and same-hint
    // serialization runs it one task at a time, while Stealing spreads the
    // (conflict-free) band across all 16 cores — the worst case of the
    // paper's hint trade-off, locked in as a shape assertion like the
    // maxflow one below.
    use swarm_repro::apps::synth::{Hostile, HostileWorkload};
    let run_with = |scheduler: Scheduler| {
        let mut engine = Sim::builder()
            .cores(16)
            .app(Hostile::new(HostileWorkload::hint_alias(96, 150, 17)))
            .scheduler(scheduler)
            .build()
            .expect("a valid simulation description");
        engine.run().expect("hostile aliasing must still validate")
    };
    let stealing = run_with(Scheduler::Stealing);
    let hints = run_with(Scheduler::Hints);
    assert_eq!(stealing.tasks_aborted, 0, "the aliased tasks touch disjoint lines");
    assert!(
        stealing.runtime_cycles * 2 < hints.runtime_cycles,
        "stealing ({}) should finish far ahead of one-tile serialized hints ({})",
        stealing.runtime_cycles,
        hints.runtime_cycles
    );
}

#[test]
fn load_balancer_corrects_zipfian_key_skew_on_kvstore() {
    // The kvstore workload exists precisely for this regime: Zipfian key
    // popularity concentrates hint load on a few tiles, so LBHints must
    // reconfigure and even out per-tile committed cycles relative to the
    // static hint hash.
    use swarm_repro::apps::kvstore::{KvWorkload, Kvstore};
    let run_with = |scheduler: Scheduler| {
        let mut cfg = SystemConfig::with_cores(16);
        cfg.lb_epoch = 2_000;
        let workload = KvWorkload::zipfian(64, 1200, 17);
        let mut engine = Sim::builder()
            .config(cfg)
            .app(Kvstore::new(workload))
            .scheduler(scheduler)
            .build()
            .expect("a valid simulation description");
        engine.run().expect("kvstore must validate")
    };
    let hints = run_with(Scheduler::Hints);
    let lb = run_with(Scheduler::LbHints);
    assert!(lb.lb_reconfigs > 0, "the load balancer never reconfigured on a Zipfian workload");
    assert!(
        lb.load_imbalance() < hints.load_imbalance(),
        "LBHints imbalance ({:.3}) should beat static Hints ({:.3}) on skewed keys",
        lb.load_imbalance(),
        hints.load_imbalance()
    );
}

#[test]
fn stealing_outruns_hints_on_maxflow_where_vertex_lines_are_shared() {
    // maxflow's distinctive stress: eight vertices share each excess-word
    // cache line, so line hints serialize whole neighborhoods of discharge
    // tasks on one tile, and a work-stealing schedule finishes well ahead.
    // (Hints still aborts less and moves less data — see
    // tests/end_to_end.rs — which is exactly the trade-off this workload
    // was added to surface.)
    let run_with = |scheduler: Scheduler| {
        let mut engine = Sim::builder()
            .cores(16)
            .app_boxed(AppSpec::coarse(BenchmarkId::Maxflow).build(InputScale::Tiny, 99))
            .scheduler(scheduler)
            .build()
            .expect("a valid simulation description");
        engine.run().expect("maxflow must validate")
    };
    let stealing = run_with(Scheduler::Stealing);
    let hints = run_with(Scheduler::Hints);
    assert!(
        stealing.runtime_cycles * 2 < hints.runtime_cycles,
        "stealing ({}) should clearly outrun line-serialized hints ({}) on maxflow",
        stealing.runtime_cycles,
        hints.runtime_cycles
    );
}

#[test]
fn lbhints_spreads_hot_buckets_over_time() {
    // Two hot objects under LBHints: even if both initially hash to the same
    // tile, reconfigurations may separate them; in all cases the run must
    // stay valid and reconfigurations must have been attempted.
    let mut engine = Sim::builder()
        .cores(16)
        .app(ObjectWorkload { objects: 6, tasks_per_object: 48 })
        .scheduler(Scheduler::LbHints)
        .build()
        .expect("a valid simulation description");
    let stats = engine.run().expect("lbhints run must validate");
    assert!(stats.gvt_updates > 0);
    assert!(stats.tasks_committed == 6 * 48);
}
