//! End-to-end suite for the serving stack: protocol determinism, cache
//! correctness, cross-client deduplication, and disk persistence.
//!
//! The core contract under test: a result served through the protocol —
//! fresh, from memory, from disk, or deduplicated against a concurrent
//! run — is *byte-identical* to running the same point directly with
//! [`swarm_bench::run_point_result`]. Simulations here are deterministic,
//! so the content-addressed cache is not an approximation; these tests
//! pin that equivalence end to end.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use proptest::prelude::*;
use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId, InputScale};
use swarm_bench::{run_point_result, run_point_result_observed, RunError, RunRequest};
use swarm_serve::proto::{render_request, stats_to_json};
use swarm_serve::{
    parse_event, CacheSource, Event, FailureKind, PipeSummary, PointFailure, PointOutcome,
    PointRunner, Request, RunPoint, ServeOptions, Server, SubmitRequest, TcpServer,
};
use swarm_sim::RunStats;
use swarm_types::{CanonKey, Canonical, FastHashMap};

fn to_request(point: &RunPoint) -> RunRequest {
    RunRequest {
        spec: point.spec,
        scheduler: point.scheduler,
        cores: point.cores,
        scale: point.scale,
        seed: point.seed,
        fault: point.fault,
        noc: point.noc,
    }
}

fn to_failure(err: &RunError) -> PointFailure {
    let kind = match err {
        RunError::InvalidPoint { .. } => FailureKind::InvalidPoint,
        RunError::Sim { .. } => FailureKind::Sim,
        RunError::Panicked { .. } => FailureKind::Panicked,
        RunError::Skipped { .. } => FailureKind::Skipped,
    };
    PointFailure { kind, message: err.to_string() }
}

/// The reference runner: one direct, serial `run_point_result` per point.
struct DirectRunner;

impl PointRunner for DirectRunner {
    fn run_batch(&self, points: &[RunPoint]) -> Vec<PointOutcome> {
        points
            .iter()
            .map(|p| run_point_result(to_request(p), false).map_err(|e| to_failure(&e)))
            .collect()
    }

    fn run_observed(&self, point: &RunPoint, on_gvt: &mut dyn FnMut(u64)) -> PointOutcome {
        struct Collect(std::sync::Arc<Mutex<Vec<u64>>>);
        impl swarm_sim::SimObserver for Collect {
            fn on_gvt_update(&mut self, now: u64) {
                self.0.lock().unwrap().push(now);
            }
        }
        let gvts = std::sync::Arc::new(Mutex::new(Vec::new()));
        let result = run_point_result_observed(to_request(point), false, Collect(gvts.clone()));
        for &gvt in gvts.lock().unwrap().iter() {
            on_gvt(gvt);
        }
        result.map_err(|e| to_failure(&e))
    }
}

/// Wraps [`DirectRunner`] and counts how many times each canonical key is
/// actually simulated — the dedup tests assert every count is exactly 1.
struct CountingRunner {
    counts: std::sync::Arc<Mutex<FastHashMap<CanonKey, usize>>>,
}

impl CountingRunner {
    fn new() -> CountingRunner {
        CountingRunner { counts: std::sync::Arc::new(Mutex::new(FastHashMap::default())) }
    }
}

impl PointRunner for CountingRunner {
    fn run_batch(&self, points: &[RunPoint]) -> Vec<PointOutcome> {
        {
            let mut counts = self.counts.lock().unwrap();
            for point in points {
                *counts.entry(point.canon_key()).or_insert(0) += 1;
            }
        }
        DirectRunner.run_batch(points)
    }
}

fn point(app: BenchmarkId, scheduler: Scheduler, cores: u32) -> RunPoint {
    RunPoint::new(AppSpec::coarse(app), scheduler, cores, InputScale::Tiny)
}

fn submit_line(id: &str, points: &[RunPoint], progress: bool) -> String {
    let request =
        Request::Submit(SubmitRequest { id: id.to_string(), points: points.to_vec(), progress });
    format!("{}\n", render_request(&request))
}

/// Run one pipe session over `input` and return the summary plus every
/// event the server emitted, in order.
fn pipe<R: PointRunner + 'static>(server: &Server<R>, input: String) -> (PipeSummary, Vec<Event>) {
    let mut out = Vec::new();
    let summary = server.serve_pipe(Cursor::new(input), &mut out).expect("pipe I/O");
    let text = String::from_utf8(out).expect("events are UTF-8");
    let events = text
        .lines()
        .map(|line| parse_event(line).unwrap_or_else(|e| panic!("unparseable event {line}: {e}")))
        .collect();
    (summary, events)
}

fn finished_stats(events: &[Event]) -> Vec<(u64, CacheSource, RunStats)> {
    events
        .iter()
        .filter_map(|event| match event {
            Event::PointFinished { index, source, stats, .. } => {
                Some((*index, *source, stats.clone()))
            }
            _ => None,
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("swarm_serve_it_{}_{}_{}", std::process::id(), tag, n))
}

#[test]
fn pipe_session_matches_direct_runs_byte_for_byte() {
    let points = [
        point(BenchmarkId::Sssp, Scheduler::Hints, 4),
        point(BenchmarkId::Bfs, Scheduler::Random, 2),
    ];
    let server = Server::new(DirectRunner, ServeOptions::default()).unwrap();
    let (summary, events) = pipe(&server, submit_line("m1", &points, false));
    assert_eq!(summary, PipeSummary::default(), "a clean session sets no failure flags");

    let finished = finished_stats(&events);
    assert_eq!(finished.len(), points.len());
    for ((index, source, stats), p) in finished.iter().zip(&points) {
        assert_eq!(*source, CacheSource::Fresh, "first sight of a point is simulated");
        let direct = run_point_result(to_request(p), false).unwrap();
        assert_eq!(*stats, direct, "point {index} diverged from the direct run");
        // Bit-for-bit through the wire codec too, not just PartialEq.
        assert_eq!(stats_to_json(stats).render(), stats_to_json(&direct).render());
    }
    match events.last().unwrap() {
        Event::RunDone { ok, failed, cache, .. } => {
            assert_eq!((*ok, *failed), (2, 0));
            assert_eq!((cache.hits, cache.misses), (0, 2));
        }
        other => panic!("expected run-done last, got {other:?}"),
    }
}

#[test]
fn repeat_submission_is_served_entirely_from_cache() {
    let points = [
        point(BenchmarkId::Sssp, Scheduler::Hints, 2),
        point(BenchmarkId::Des, Scheduler::Hints, 2),
    ];
    let server = Server::new(DirectRunner, ServeOptions::default()).unwrap();
    let input = format!("{}{}", submit_line("a", &points, false), submit_line("b", &points, false));
    let (_, events) = pipe(&server, input);

    let finished = finished_stats(&events);
    assert_eq!(finished.len(), 4);
    let (first, second) = finished.split_at(2);
    for ((_, source_a, stats_a), (_, source_b, stats_b)) in first.iter().zip(second) {
        assert_eq!(*source_a, CacheSource::Fresh);
        assert_eq!(*source_b, CacheSource::Memory, "the repeat must be cache-served");
        assert_eq!(stats_a, stats_b, "cache-served stats must be identical to fresh ones");
        assert_eq!(stats_to_json(stats_a).render(), stats_to_json(stats_b).render());
    }

    let dones: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::RunDone { id, cache, .. } => Some((id.clone(), *cache)),
            _ => None,
        })
        .collect();
    assert_eq!(dones.len(), 2);
    assert_eq!((dones[0].1.hits, dones[0].1.misses), (0, 2));
    // 100% of the repeat submission is cache-served (the CI smoke asserts
    // the >= 90% acceptance floor on this same protocol surface).
    assert_eq!((dones[1].1.hits, dones[1].1.misses), (2, 0));
    assert_eq!(dones[1].1.entries, 2);
}

#[test]
fn malformed_lines_get_typed_errors_and_the_session_continues() {
    let server = Server::new(DirectRunner, ServeOptions::default()).unwrap();
    let input = format!(
        "this is not json\n{{\"type\":\"launch\"}}\n\n{}{}\n",
        submit_line("ok", &[point(BenchmarkId::Sssp, Scheduler::Hints, 1)], false),
        "{\"type\":\"shutdown\"}",
    );
    let (summary, events) = pipe(&server, input);
    assert!(summary.saw_protocol_error);
    assert!(!summary.saw_invalid_point && !summary.saw_run_failure);

    // Two typed errors (bad JSON, unknown type), then a full successful
    // submission, then the shutdown acknowledgement: the connection
    // survived both bad lines.
    assert!(
        matches!(&events[0], Event::Protocol(e) if e.message.contains("byte")),
        "{:?}",
        events[0]
    );
    assert!(
        matches!(&events[1], Event::Protocol(e) if e.message.contains("launch")),
        "{:?}",
        events[1]
    );
    assert!(matches!(&events[2], Event::Accepted { points: 1, .. }));
    assert!(matches!(events.last().unwrap(), Event::Bye));
    assert_eq!(finished_stats(&events).len(), 1);
}

#[test]
fn failing_points_fail_typed_without_poisoning_the_matrix() {
    // A lost task wake wedges the run into a deadlock, which the runner
    // reports as a typed Sim failure (see PR 8's taxonomy).
    let mut bad = point(BenchmarkId::Sssp, Scheduler::Hints, 4);
    bad.fault = Some("lost-wake:ts=1@0".parse().unwrap());
    let good = point(BenchmarkId::Sssp, Scheduler::Hints, 2);
    let server = Server::new(DirectRunner, ServeOptions::default()).unwrap();
    // Submit the mixed matrix twice: the second submission must serve the
    // memoized failure and the cached success without re-simulating.
    let input = format!(
        "{}{}",
        submit_line("mix", &[bad, good], false),
        submit_line("again", &[bad, good], false)
    );
    let (summary, events) = pipe(&server, input);

    let failed: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::PointFailed { index, error, .. } => Some((*index, error.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(failed.len(), 2, "{events:?}");
    assert_eq!(failed[0].0, 0);
    assert_eq!(failed[0].1.kind, FailureKind::Sim);
    assert!(failed[0].1.message.contains("sssp under Hints at 4 cores failed"), "{failed:?}");
    assert_eq!(failed[1].1, failed[0].1, "the memoized failure is served verbatim");
    assert!(summary.saw_run_failure);
    assert!(!summary.saw_invalid_point && !summary.saw_protocol_error);
    // The good point still ran and matches its direct result.
    let finished = finished_stats(&events);
    assert_eq!(finished.len(), 2);
    assert_eq!(finished[0].2, run_point_result(to_request(&good), false).unwrap());
    let dones: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::RunDone { ok, failed, cache, .. } => Some((*ok, *failed, *cache)),
            _ => None,
        })
        .collect();
    assert_eq!(dones.len(), 2);
    assert_eq!((dones[0].0, dones[0].1), (1, 1));
    assert_eq!((dones[1].0, dones[1].1), (1, 1));
    // Second pass: both points are hits (one memoized failure, one cached
    // success), nothing is re-simulated.
    assert_eq!((dones[1].2.hits, dones[1].2.misses), (2, 0));
}

#[test]
fn progress_mode_streams_gvt_without_perturbing_the_result() {
    let p = point(BenchmarkId::Des, Scheduler::Hints, 4);
    let options = ServeOptions { progress_every: 8, ..ServeOptions::default() };
    let server = Server::new(DirectRunner, options).unwrap();
    let (_, events) = pipe(&server, submit_line("prog", &[p], true));

    let gvts: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Progress { gvt, .. } => Some(*gvt),
            _ => None,
        })
        .collect();
    assert!(!gvts.is_empty(), "a des run at tiny scale advances GVT many times: {events:?}");
    assert!(gvts.windows(2).all(|w| w[0] <= w[1]), "GVT is monotonic: {gvts:?}");

    let finished = finished_stats(&events);
    assert_eq!(finished.len(), 1);
    assert_eq!(finished[0].1, CacheSource::Fresh);
    assert_eq!(finished[0].2, run_point_result(to_request(&p), false).unwrap());
}

#[test]
fn disk_cache_survives_a_server_restart() {
    let dir = temp_dir("restart");
    let points = [point(BenchmarkId::Bfs, Scheduler::Hints, 2)];
    let options = ServeOptions { cache_dir: Some(dir.clone()), ..ServeOptions::default() };
    {
        let server = Server::new(DirectRunner, options.clone()).unwrap();
        let (_, events) = pipe(&server, submit_line("warm", &points, false));
        assert_eq!(finished_stats(&events)[0].1, CacheSource::Fresh);
    }
    // A brand-new server (empty memory) over the same directory serves the
    // same submission from disk, byte-identically, simulating nothing.
    let server = Server::new(PanicRunner, options).unwrap();
    let (_, events) = pipe(&server, submit_line("cold", &points, false));
    let finished = finished_stats(&events);
    assert_eq!(finished[0].1, CacheSource::Disk);
    assert_eq!(finished[0].2, run_point_result(to_request(&points[0]), false).unwrap());
    match events.last().unwrap() {
        Event::RunDone { cache, .. } => {
            assert_eq!((cache.hits, cache.misses, cache.disk_hits), (1, 0, 1));
        }
        other => panic!("expected run-done, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();

    /// A runner that must never be called: proves the restarted server
    /// answered purely from disk.
    struct PanicRunner;
    impl PointRunner for PanicRunner {
        fn run_batch(&self, points: &[RunPoint]) -> Vec<PointOutcome> {
            panic!("the disk-served session must not simulate, got {points:?}");
        }
    }
}

#[test]
fn concurrent_overlapping_clients_simulate_each_point_exactly_once() {
    let shared = [
        point(BenchmarkId::Sssp, Scheduler::Hints, 2),
        point(BenchmarkId::Bfs, Scheduler::Hints, 2),
    ];
    let only_a = point(BenchmarkId::Des, Scheduler::Hints, 2);
    let only_b = point(BenchmarkId::Sssp, Scheduler::Random, 2);
    let matrix_a = vec![shared[0], shared[1], only_a];
    let matrix_b = vec![shared[1], shared[0], only_b];

    let runner = CountingRunner::new();
    let counts_handle = runner.counts.clone();
    let server = Server::new(runner, ServeOptions::default()).unwrap();
    let tcp = TcpServer::spawn("127.0.0.1:0", server).unwrap();
    let addr = tcp.local_addr();

    let run_client = |id: String, matrix: Vec<RunPoint>| {
        move || -> Vec<(u64, CacheSource, RunStats)> {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            writer.write_all(submit_line(&id, &matrix, false).as_bytes()).unwrap();
            let mut finished = Vec::new();
            let mut line = String::new();
            loop {
                line.clear();
                assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server hung up early");
                match parse_event(line.trim_end()).unwrap() {
                    Event::PointFinished { index, source, stats, .. } => {
                        finished.push((index, source, stats));
                    }
                    Event::PointFailed { error, .. } => panic!("unexpected failure: {error:?}"),
                    Event::RunDone { .. } => break,
                    _ => {}
                }
            }
            writer.write_all(b"{\"type\":\"shutdown\"}\n").unwrap();
            finished
        }
    };

    let (got_a, got_b) = std::thread::scope(|scope| {
        let a = scope.spawn(run_client("a".into(), matrix_a.clone()));
        let b = scope.spawn(run_client("b".into(), matrix_b.clone()));
        (a.join().unwrap(), b.join().unwrap())
    });

    // Every result, whichever client owned the simulation, matches the
    // direct run bit-for-bit.
    for (matrix, got) in [(&matrix_a, &got_a), (&matrix_b, &got_b)] {
        assert_eq!(got.len(), matrix.len());
        for (index, _, stats) in got {
            let direct = run_point_result(to_request(&matrix[*index as usize]), false).unwrap();
            assert_eq!(*stats, direct);
        }
    }

    // The union of simulated points has no duplicates: four distinct keys,
    // each simulated exactly once despite the overlap.
    tcp.shutdown();
    let counts = counts_handle.lock().unwrap();
    assert_eq!(counts.len(), 4, "{counts:?}");
    for (key, count) in counts.iter() {
        assert_eq!(*count, 1, "point {key} simulated more than once");
    }
}

/// A small deterministic family of points for the canonical-key property:
/// rich enough to cover every field the key must separate.
fn point_family() -> Vec<RunPoint> {
    let mut family = Vec::new();
    for (i, app) in [BenchmarkId::Sssp, BenchmarkId::Bfs, BenchmarkId::Des].iter().enumerate() {
        for (j, scheduler) in [Scheduler::Hints, Scheduler::Random].iter().enumerate() {
            for cores in [1u32, 2] {
                for seed in [0xF1605u64, 7] {
                    let mut p = point(*app, *scheduler, cores);
                    p.seed = seed;
                    if (i + j) % 2 == 0 {
                        p.noc = swarm_types::NocModel::Contention;
                    }
                    family.push(p);
                }
            }
        }
    }
    family
}

#[test]
fn canonical_key_equality_is_point_equality_across_the_family() {
    let family = point_family();
    for a in &family {
        for b in &family {
            assert_eq!(
                a == b,
                a.canon_key() == b.canon_key(),
                "keys must separate exactly the distinct points: {a:?} vs {b:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random pairs from the family: equal wire encodings iff equal keys,
    /// and every point survives the protocol round trip unchanged.
    #[test]
    fn canon_keys_and_wire_round_trips_agree(ai in 0usize..24, bi in 0usize..24) {
        let family = point_family();
        let (a, b) = (family[ai % family.len()], family[bi % family.len()]);
        prop_assert_eq!(a == b, a.canon_key() == b.canon_key());
        let line = render_request(&Request::Submit(SubmitRequest {
            id: "rt".into(),
            points: vec![a, b],
            progress: false,
        }));
        match swarm_serve::proto::parse_request(&line).unwrap() {
            Request::Submit(back) => prop_assert_eq!(back.points, vec![a, b]),
            other => prop_assert!(false, "expected submit, got {:?}", other),
        }
    }
}
