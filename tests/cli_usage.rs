//! CLI usage-error regression suite: malformed invocations must exit 2
//! with a diagnostic on stderr, not silently fall back to defaults.
//!
//! Each case here pins a historical silent failure: `--scale full` used to
//! run at Small while claiming a full-scale invocation, unknown `--flags`
//! and unparsable `--schedulers`/`--apps` lists were dropped without a
//! word, and a trailing flag with no value was ignored outright.

use std::process::Command;

/// Run `swarm <args...>` and return (exit code, stdout, stderr).
fn swarm(args: &[&str]) -> (i32, String, String) {
    let output = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--bin", "swarm", "--"])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("the swarm binary runs");
    (
        output.status.code().expect("an exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn malformed_invocations_exit_2_with_a_diagnostic() {
    // (args, substring the stderr diagnostic must contain)
    let cases: &[(&[&str], &str)] = &[
        // Unknown --scale values used to map silently to Small.
        (&["fig2", "--scale", "full"], "tiny, small, medium"),
        (&["fig2", "--scale", "smal"], "smal"),
        // Unknown flags used to be ignored by the `_ => {}` arm.
        (&["fig2", "--bogus-flag"], "--bogus-flag"),
        (&["fig2", "--schedulres", "hints"], "did you mean '--schedulers'"),
        // A wholly unparsable list used to silently keep the default set.
        (&["fig2", "--schedulers", "hintz"], "hintz"),
        (&["fig5", "--apps", "zorp,blag"], "selects nothing"),
        // A trailing flag with no value used to be dropped outright.
        (&["fig2", "--jobs"], "--jobs requires a value"),
        (&["summary", "--scale"], "--scale requires a value"),
        // Malformed scalar values and the --noc model name are strict too.
        (&["fig2", "--seed", "nine"], "--seed"),
        (&["fig5", "--noc", "magic"], "analytic, contention"),
        // `serve` has its own flag set but the same strictness contract.
        (&["serve", "--bogus"], "--bogus"),
        (&["serve", "--tpc", "127.0.0.1:0"], "did you mean '--tcp'"),
        (&["serve", "--cache-dir"], "--cache-dir requires a value"),
        (&["serve", "--mem-entries", "lots"], "not a valid number"),
        // `bench-serve` routes through the shared strict parser.
        (&["bench-serve", "--clients"], "--clients requires a value"),
        (&["bench-serve", "--cleints", "2"], "did you mean '--clients'"),
    ];
    for (args, needle) in cases {
        let (code, _, stderr) = swarm(args);
        assert_eq!(code, 2, "swarm {args:?} must exit 2, stderr:\n{stderr}");
        assert!(
            stderr.contains(needle),
            "swarm {args:?} stderr must mention {needle:?}, got:\n{stderr}"
        );
    }
}

#[test]
fn partially_bad_lists_warn_but_proceed() {
    // `--schedulers hints,hintz` drops `hintz` with a warning and still
    // runs; exercised through `sysconfig`-free fig3 would simulate, so use
    // the cheapest real command at tiny scale.
    let (code, stdout, stderr) = swarm(&[
        "table1",
        "--scale",
        "tiny",
        "--apps",
        "bfs,zorp",
        "--schedulers",
        "hints",
        "--jobs",
        "2",
    ]);
    assert_eq!(code, 0, "stderr:\n{stderr}");
    assert!(stderr.contains("zorp"), "dropped element must be reported, got:\n{stderr}");
    assert!(stdout.contains("bfs"), "the parsable subset still runs:\n{stdout}");
}

#[test]
fn command_help_exits_zero_with_usage() {
    let (code, stdout, _) = swarm(&["fig2", "--help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("--scale"), "help text lists the shared flags:\n{stdout}");
}
