//! Quickstart: write a tiny Swarm program by hand, give its tasks spatial
//! hints, and compare the Random and Hints schedulers.
//!
//! Run with: `cargo run --example quickstart`

use swarm_repro::prelude::*;

/// A toy "bank" workload: `accounts` accounts, each hammered by `per_account`
/// deposit tasks. Tasks touching the same account carry the same hint, so
/// the Hints scheduler serializes them on one tile instead of letting them
/// conflict across the whole chip.
struct Bank {
    accounts: u64,
    per_account: u64,
}

const BALANCE_BASE: u64 = 0x10_000;

impl SwarmApp for Bank {
    fn name(&self) -> &str {
        "bank"
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        let mut tasks = Vec::new();
        for account in 0..self.accounts {
            for i in 0..self.per_account {
                tasks.push(InitialTask::new(
                    0,
                    i, // timestamp: deposits are ordered per round
                    Hint::value(account),
                    vec![account, 10 + i],
                ));
            }
        }
        tasks
    }

    fn run_task(&self, _fid: u16, _ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let account = args[0];
        let amount = args[1];
        let addr = BALANCE_BASE + account * 64;
        let balance = ctx.read(addr);
        ctx.compute(25);
        ctx.write(addr, balance + amount);
    }

    fn validate(&self, mem: &swarm_repro::mem::SimMemory) -> Result<(), String> {
        let expected_per_account: u64 = (0..self.per_account).map(|i| 10 + i).sum();
        for account in 0..self.accounts {
            let got = mem.load(BALANCE_BASE + account * 64);
            if got != expected_per_account {
                return Err(format!("account {account}: {got} != {expected_per_account}"));
            }
        }
        Ok(())
    }
}

fn run(scheduler: Scheduler) -> RunStats {
    let mut engine = Sim::builder()
        .cores(16)
        .app(Bank { accounts: 32, per_account: 16 })
        .scheduler(scheduler)
        .build()
        .expect("a valid simulation description");
    engine.run().expect("the bank must balance")
}

fn main() {
    println!("Quickstart: 512 conflicting deposit tasks over 32 accounts, 16 cores\n");
    let random = run(Scheduler::Random);
    let hints = run(Scheduler::Hints);
    for (name, stats) in [("Random", &random), ("Hints", &hints)] {
        println!(
            "{name:>8}: runtime {:>8} cycles, {:>4} commits, {:>4} aborted executions, {:>9} flit-hops",
            stats.runtime_cycles,
            stats.tasks_committed,
            stats.tasks_aborted,
            stats.traffic.total()
        );
    }
    println!(
        "\nHints vs Random: {:.2}x faster, {:.1}x fewer aborted executions",
        random.runtime_cycles as f64 / hints.runtime_cycles as f64,
        random.tasks_aborted.max(1) as f64 / hints.tasks_aborted.max(1) as f64
    );
}
