//! An in-memory OLTP database (silo) running a TPC-C-like mix, with hints
//! derived from (table, primary key) pairs — the "abstract unique id" hint
//! pattern: the tuple's address is unknown at task creation time, but its
//! identity is.
//!
//! Run with: `cargo run --release --example silo_oltp`

use swarm_repro::apps::silo::{Silo, SiloWorkload};
use swarm_repro::prelude::*;

fn run(workload: SiloWorkload, scheduler: Scheduler, cores: u32) -> RunStats {
    let mut engine = Sim::builder()
        .cores(cores)
        .app(Silo::new(workload))
        .scheduler(scheduler)
        .build()
        .expect("a valid simulation description");
    engine.run().expect("silo must match the serial transaction order")
}

fn main() {
    let workload = SiloWorkload { transactions: 300, seed: 11, ..SiloWorkload::default() };
    println!(
        "silo: {} transactions over {} warehouses, 16 cores\n",
        workload.transactions, workload.warehouses
    );
    println!(
        "{:>10}{:>12}{:>10}{:>10}{:>14}",
        "scheduler", "cycles", "commits", "aborts", "NoC flit-hops"
    );
    for scheduler in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints]
    {
        let stats = run(workload.clone(), scheduler, 16);
        println!(
            "{:>10}{:>12}{:>10}{:>10}{:>14}",
            scheduler.name(),
            stats.runtime_cycles,
            stats.tasks_committed,
            stats.tasks_aborted,
            stats.traffic.total()
        );
    }
    println!("\nEvery run validated balances, stock and order ids against serial execution.");
}
