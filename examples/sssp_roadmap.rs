//! Shortest paths on a synthetic road map: the paper's flagship graph
//! workload, comparing coarse- vs fine-grain tasks under every scheduler.
//!
//! Run with: `cargo run --release --example sssp_roadmap`

use swarm_repro::apps::sssp::Sssp;
use swarm_repro::apps::Graph;
use swarm_repro::prelude::*;

fn run(app: Box<dyn SwarmApp>, scheduler: Scheduler, cores: u32) -> RunStats {
    let mut engine = Sim::builder()
        .cores(cores)
        .app_boxed(app)
        .scheduler(scheduler)
        .build()
        .expect("a valid simulation description");
    engine.run().expect("sssp must match Dijkstra")
}

fn main() {
    let cores = 16;
    println!("sssp on a 24x24 road grid, {cores} cores\n");
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}",
        "variant", "scheduler", "cycles", "commits", "aborts"
    );
    for fine in [false, true] {
        for scheduler in
            [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints]
        {
            let graph = Graph::road_grid(24, 24, 7);
            let app: Box<dyn SwarmApp> = if fine {
                Box::new(Sssp::fine(graph, 0))
            } else {
                Box::new(Sssp::coarse(graph, 0))
            };
            let stats = run(app, scheduler, cores);
            println!(
                "{:<10}{:>12}{:>12}{:>12}{:>12}",
                if fine { "fine" } else { "coarse" },
                scheduler.name(),
                stats.runtime_cycles,
                stats.tasks_committed,
                stats.tasks_aborted
            );
        }
    }
    println!("\nEvery run validated its distances against a serial Dijkstra execution.");
}
