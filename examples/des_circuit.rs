//! Discrete event simulation of a digital circuit (the paper's Listing 1
//! example and motivating benchmark), showing how spatial hints plus the
//! data-centric load balancer recover the scalability Random scheduling
//! loses.
//!
//! Run with: `cargo run --release --example des_circuit`

use swarm_repro::apps::des::{Circuit, Des};
use swarm_repro::prelude::*;

fn run(circuit: Circuit, scheduler: Scheduler, cores: u32) -> RunStats {
    let mut engine = Sim::builder()
        .cores(cores)
        .app(Des::new(circuit))
        .scheduler(scheduler)
        .build()
        .expect("a valid simulation description");
    engine.run().expect("des must match the serial event-driven simulation")
}

fn main() {
    let circuit = Circuit::layered(12, 8, 6, 42);
    println!("des: {} gates, {} external toggles\n", circuit.gates.len(), circuit.waveforms.len());
    println!(
        "{:>10}{:>8}{:>12}{:>10}{:>10}{:>12}",
        "scheduler", "cores", "cycles", "commits", "aborts", "speedup"
    );
    let baseline = run(circuit.clone(), Scheduler::Random, 1);
    println!(
        "{:>10}{:>8}{:>12}{:>10}{:>10}{:>12.2}",
        "Random", 1, baseline.runtime_cycles, baseline.tasks_committed, baseline.tasks_aborted, 1.0
    );
    for scheduler in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints]
    {
        for cores in [16u32, 64] {
            let stats = run(circuit.clone(), scheduler, cores);
            println!(
                "{:>10}{:>8}{:>12}{:>10}{:>10}{:>12.2}",
                scheduler.name(),
                cores,
                stats.runtime_cycles,
                stats.tasks_committed,
                stats.tasks_aborted,
                stats.speedup_over(&baseline)
            );
        }
    }
}
