//! Zipfian key-value store: how spatial hints tame a skewed workload.
//!
//! A handful of hot keys dominate a Zipfian op stream, so schedulers that
//! scatter tasks (Random) keep aborting conflicting operations on the same
//! key, while the Hints scheduler sends every operation on a key to that
//! key's home tile, where same-hint serialization turns would-be aborts
//! into queueing. The load balancer then spreads the hot tiles' surplus.
//!
//! Run with: `cargo run --example kvstore_zipf`

use swarm_repro::apps::kvstore::{KvWorkload, Kvstore};
use swarm_repro::prelude::*;

fn run(workload: &KvWorkload, scheduler: Scheduler) -> RunStats {
    let mut engine = Sim::builder()
        .cores(16)
        .app(Kvstore::new(workload.clone()))
        .scheduler(scheduler)
        .build()
        .expect("a valid simulation description");
    engine.run().expect("kvstore must match its serial replay")
}

fn main() {
    let workload = KvWorkload::zipfian(64, 600, 42);

    // Show the skew: how often each key is touched.
    let mut touches = vec![0u64; workload.num_keys];
    for op in &workload.ops {
        touches[op.key() as usize] += 1;
    }
    let mut by_heat: Vec<(u64, usize)> = touches.iter().enumerate().map(|(k, &c)| (c, k)).collect();
    by_heat.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = touches.iter().sum();
    let top4: u64 = by_heat.iter().take(4).map(|&(c, _)| c).sum();
    println!(
        "Zipfian stream: {} ops over {} keys; the 4 hottest keys {:?} absorb {}% of all ops\n",
        workload.ops.len(),
        workload.num_keys,
        by_heat.iter().take(4).map(|&(_, k)| k).collect::<Vec<_>>(),
        top4 * 100 / total
    );

    println!("16 cores, same stream, three schedulers:");
    let [random, hints, _] =
        [Scheduler::Random, Scheduler::Hints, Scheduler::LbHints].map(|scheduler| {
            let stats = run(&workload, scheduler);
            println!(
                "{:>8}: runtime {:>7} cycles, {:>4} aborted executions, {:>8} flit-hops of traffic",
                scheduler.name(),
                stats.runtime_cycles,
                stats.tasks_aborted,
                stats.traffic.total()
            );
            stats
        });
    println!(
        "\nHints vs Random on the hot keys: {:.1}x fewer aborted executions, {:.2}x the traffic",
        random.tasks_aborted.max(1) as f64 / hints.tasks_aborted.max(1) as f64,
        hints.traffic.total() as f64 / random.traffic.total().max(1) as f64
    );
}
